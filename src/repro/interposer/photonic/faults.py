"""Hazard engine: time-varying faults and thermal events for the fabric.

The paper builds on fault-tolerance work ([39] SiPterposer, [40] DeFT):
2.5D integration must survive defective interconnect resources, and at
scale the dominant reliability tax is photonic — microring resonances
drift with temperature and the shared comb laser ages (Al-Qadasi et
al.).  The ReSiPI fabric has natural redundancy — each chiplet owns
several gateways, the memory chiplet several writer gateways, and every
channel several comb lines — so a failed resource can be masked by
deactivating it, at a bandwidth cost the controller then works around.

This module models those hazards as a **timeline of typed events** that
runs as an ordinary process inside the shared simulation
:class:`~repro.sim.core.Environment`:

* :class:`GatewayFail` / :class:`GatewayRepair` — gateway resources die
  (and may later be repaired) at a point in simulated time;
* :class:`RingDriftBurst` — a transient thermal excursion drifts the
  microring banks (:mod:`repro.photonics.thermal` drift coefficient,
  :mod:`repro.photonics.variations` per-ring deviations) so a share of
  comb lines falls out of lock for the burst's duration;
* :class:`LaserDegradation` — the comb pump degrades to a fraction of
  its nominal electrical drive for a while; the linear wall-plug model
  of :class:`~repro.photonics.laser.LaserSource` means only the same
  fraction of comb lines still closes its link budget.

:class:`HazardEngine` applies a :class:`HazardTimeline` to a live
fabric **mid-simulation**, mutating channel capacities through the
fabric's existing ``set_active_*`` hooks — so ReSiPI/PROWAVES
controllers re-adapt on their next epoch instead of being configured
around a frozen fault plan.  The legacy static :class:`FaultPlan` is
the degenerate all-events-at-``t=0`` case
(:meth:`HazardTimeline.from_plan`), applied synchronously at
construction and therefore bit-identical to the historical
:class:`FaultInjector`, which survives as a thin wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Union

import numpy as np

from ...errors import ConfigurationError, UnknownNameError
from ...photonics.laser import LaserSource
from ...photonics.thermal import RING_DRIFT_NM_PER_K
from ...photonics.variations import VariationModel
from .fabric import PhotonicInterposerFabric

RING_LOCK_RANGE_NM = 1.0
"""Resonance excursion beyond which a ring cannot be trimmed back onto
its comb line mid-operation (matches the trimming range assumed by
:func:`repro.photonics.variations.trimming_report`)."""


# ---------------------------------------------------------------------------
# The legacy static plan (still the API for one-shot studies).
# ---------------------------------------------------------------------------


@dataclass
class FaultPlan:
    """Which gateway resources are dead from the start of the run.

    ``memory_gateways_failed`` removes memory-side writer gateways;
    ``chiplet_gateways_failed`` maps chiplet id -> (write, read) failed
    counts.  A plan is the degenerate hazard timeline whose every event
    fires at ``t=0`` — see :meth:`HazardTimeline.from_plan`.
    """

    memory_gateways_failed: int = 0
    chiplet_gateways_failed: dict[str, tuple[int, int]] = field(
        default_factory=dict
    )

    @property
    def total_failed(self) -> int:
        return self.memory_gateways_failed + sum(
            w + r for w, r in self.chiplet_gateways_failed.values()
        )


# ---------------------------------------------------------------------------
# Typed hazard events.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GatewayFail:
    """Gateway resources die at ``at_s`` (until a matching repair)."""

    at_s: float
    memory_gateways: int = 0
    chiplet_gateways: tuple[tuple[str, int, int], ...] = ()

    kind: ClassVar[str] = "gateway-fail"

    @property
    def total_gateways(self) -> int:
        return self.memory_gateways + sum(
            w + r for _, w, r in self.chiplet_gateways
        )


@dataclass(frozen=True)
class GatewayRepair:
    """Previously failed gateway resources come back at ``at_s``.

    Repair only restores *capacity*: the fabric's active counts stay
    where the controller left them until its next epoch decision, which
    is when recovery becomes visible in the channels.
    """

    at_s: float
    memory_gateways: int = 0
    chiplet_gateways: tuple[tuple[str, int, int], ...] = ()

    kind: ClassVar[str] = "gateway-repair"

    @property
    def total_gateways(self) -> int:
        return self.memory_gateways + sum(
            w + r for _, w, r in self.chiplet_gateways
        )


@dataclass(frozen=True)
class RingDriftBurst:
    """A transient thermal excursion drifts every microring bank.

    For ``duration_s`` starting at ``at_s`` the dies run
    ``temperature_rise_k`` hotter, shifting each ring by the SOI drift
    coefficient; rings whose fabrication deviation (sampled from
    :class:`~repro.photonics.variations.VariationModel` with ``seed``)
    plus the thermal shift exceeds :data:`RING_LOCK_RANGE_NM` fall out
    of lock, and their comb lines carry no data until the burst ends.
    """

    at_s: float
    duration_s: float
    temperature_rise_k: float
    seed: int = 0

    kind: ClassVar[str] = "ring-drift"

    def usable_fraction(self, n_wavelengths: int) -> float:
        """Share of comb lines still locked during the burst."""
        drift_nm = self.temperature_rise_k * RING_DRIFT_NM_PER_K
        deviations = VariationModel(seed=self.seed).sample_deviations_nm(
            n_wavelengths
        )
        unlocked = np.abs(deviations + drift_nm) > RING_LOCK_RANGE_NM
        usable = 1.0 - float(np.mean(unlocked))
        return max(usable, 1.0 / n_wavelengths)


@dataclass(frozen=True)
class LaserDegradation:
    """The comb pump runs at a fraction of nominal drive for a while.

    :class:`~repro.photonics.laser.LaserSource` is linear: emitted
    optical power is electrical drive times the wall-plug efficiency,
    and every comb line needs the same fixed on-chip power to close its
    link budget — so a pump at ``power_fraction`` of nominal sustains
    only that fraction of the comb (rounded down, one line minimum).
    """

    at_s: float
    duration_s: float
    power_fraction: float

    kind: ClassVar[str] = "laser-degradation"

    def usable_fraction(self, n_wavelengths: int,
                        laser: LaserSource | None = None) -> float:
        """Share of comb lines the degraded pump still closes."""
        laser = laser or LaserSource.off_chip()
        reference_on_chip_w = 1e-3  # cancels: the model is linear
        per_line_w = laser.electrical_power_w(reference_on_chip_w)
        budget_w = self.power_fraction * n_wavelengths * per_line_w
        # Epsilon before flooring: 0.7 of a 10-line comb must keep 7
        # lines, not 6.999... binary-float noise floored to 6.
        lines = int(budget_w / per_line_w + 1e-9)
        return max(1, min(lines, n_wavelengths)) / n_wavelengths


@dataclass(frozen=True)
class ChipletMacDegrade:
    """The MAC arrays run at a fraction of nominal throughput.

    A **compute-side** hazard: thermal crosstalk, analog drift or
    post-calibration guard-banding leaves every chiplet's photonic MAC
    array sustaining only ``mac_fraction`` of its nominal rate for
    ``duration_s`` starting at ``at_s`` (``duration_s=None`` =
    permanent).  The serving layer applies it through
    :class:`~repro.core.engine.ComputeOccupancy` — compute time scales
    by ``1/mac_fraction`` while the event is active — so it lives in
    ``platform.faults`` next to the fabric kinds but never touches the
    photonic channels.
    """

    at_s: float
    mac_fraction: float
    duration_s: float | None = None

    kind: ClassVar[str] = "chiplet-mac-degrade"


HazardEvent = Union[GatewayFail, GatewayRepair, RingDriftBurst,
                    LaserDegradation]
"""Any event a :class:`HazardTimeline` can carry."""

COMPUTE_HAZARD_KINDS = ("chiplet-mac-degrade",)
"""Hazard kinds that act on the compute path (serving layer) rather
than the photonic fabric."""


# ---------------------------------------------------------------------------
# Event factories (the HAZARDS registry entries).
# ---------------------------------------------------------------------------


def _reject_inert(kind: str, **inert: bool) -> None:
    """Spec knobs that would silently no-op raise instead (they would
    still move cache digests without moving behavior)."""
    set_fields = [name for name, is_set in inert.items() if is_set]
    if set_fields:
        raise ConfigurationError(
            f"{', '.join(set_fields)} do(es) not apply to {kind!r} events"
        )


def _gateway_tuples(
    chiplet_gateways,
) -> tuple[tuple[str, int, int], ...]:
    entries = []
    for entry in chiplet_gateways:
        chiplet_id, n_write, n_read = entry
        if n_write < 0 or n_read < 0:
            raise ConfigurationError(
                f"{chiplet_id}: gateway counts must be >= 0, got "
                f"({n_write}, {n_read})"
            )
        entries.append((str(chiplet_id), int(n_write), int(n_read)))
    return tuple(entries)


def _make_gateway_event(cls, kind: str, at_s: float,
                        duration_s: float | None = None,
                        memory_gateways: int = 0,
                        chiplet_gateways=(),
                        temperature_rise_k: float = 0.0,
                        power_fraction: float = 1.0,
                        seed: int = 0,
                        node: int | None = None,
                        nodes=(),
                        mac_fraction: float = 1.0):
    _reject_inert(
        kind,
        duration_s=duration_s is not None,
        temperature_rise_k=temperature_rise_k != 0.0,
        power_fraction=power_fraction != 1.0,
        seed=seed != 0,
        node=node is not None,
        nodes=bool(nodes),
        mac_fraction=mac_fraction != 1.0,
    )
    if memory_gateways < 0:
        raise ConfigurationError(
            f"memory gateway count must be >= 0, got {memory_gateways}"
        )
    event = cls(
        at_s=at_s,
        memory_gateways=memory_gateways,
        chiplet_gateways=_gateway_tuples(chiplet_gateways),
    )
    if event.total_gateways == 0:
        raise ConfigurationError(
            f"{kind} at t={at_s}s names no gateways; set memory_gateways "
            "and/or chiplet_gateways"
        )
    return event


def make_gateway_fail(at_s: float, **fields) -> GatewayFail:
    """``gateway-fail`` factory: validates the generic spec field set."""
    return _make_gateway_event(GatewayFail, "gateway-fail", at_s, **fields)


def make_gateway_repair(at_s: float, **fields) -> GatewayRepair:
    """``gateway-repair`` factory."""
    return _make_gateway_event(
        GatewayRepair, "gateway-repair", at_s, **fields
    )


def make_ring_drift(at_s: float, duration_s: float | None = None,
                    memory_gateways: int = 0, chiplet_gateways=(),
                    temperature_rise_k: float = 0.0,
                    power_fraction: float = 1.0,
                    seed: int = 0,
                    node: int | None = None,
                    nodes=(),
                    mac_fraction: float = 1.0) -> RingDriftBurst:
    """``ring-drift`` factory."""
    _reject_inert(
        "ring-drift",
        memory_gateways=memory_gateways != 0,
        chiplet_gateways=bool(chiplet_gateways),
        power_fraction=power_fraction != 1.0,
        node=node is not None,
        nodes=bool(nodes),
        mac_fraction=mac_fraction != 1.0,
    )
    if duration_s is None or duration_s <= 0:
        raise ConfigurationError(
            f"ring-drift needs a positive duration_s, got {duration_s}"
        )
    if temperature_rise_k <= 0:
        raise ConfigurationError(
            f"ring-drift needs a positive temperature_rise_k, got "
            f"{temperature_rise_k}"
        )
    return RingDriftBurst(
        at_s=at_s, duration_s=duration_s,
        temperature_rise_k=temperature_rise_k, seed=seed,
    )


def make_laser_degradation(at_s: float, duration_s: float | None = None,
                           memory_gateways: int = 0, chiplet_gateways=(),
                           temperature_rise_k: float = 0.0,
                           power_fraction: float = 1.0,
                           seed: int = 0,
                           node: int | None = None,
                           nodes=(),
                           mac_fraction: float = 1.0) -> LaserDegradation:
    """``laser-degradation`` factory."""
    _reject_inert(
        "laser-degradation",
        memory_gateways=memory_gateways != 0,
        chiplet_gateways=bool(chiplet_gateways),
        temperature_rise_k=temperature_rise_k != 0.0,
        seed=seed != 0,
        node=node is not None,
        nodes=bool(nodes),
        mac_fraction=mac_fraction != 1.0,
    )
    if duration_s is None or duration_s <= 0:
        raise ConfigurationError(
            f"laser-degradation needs a positive duration_s, got "
            f"{duration_s}"
        )
    if not 0.0 < power_fraction < 1.0:
        raise ConfigurationError(
            f"laser-degradation needs power_fraction in (0, 1) — 1.0 "
            f"(the spec default) means no degradation; got "
            f"{power_fraction}"
        )
    return LaserDegradation(
        at_s=at_s, duration_s=duration_s, power_fraction=power_fraction
    )


def make_mac_degrade(at_s: float, duration_s: float | None = None,
                     memory_gateways: int = 0, chiplet_gateways=(),
                     temperature_rise_k: float = 0.0,
                     power_fraction: float = 1.0,
                     seed: int = 0,
                     node: int | None = None,
                     nodes=(),
                     mac_fraction: float = 1.0) -> ChipletMacDegrade:
    """``chiplet-mac-degrade`` factory."""
    _reject_inert(
        "chiplet-mac-degrade",
        memory_gateways=memory_gateways != 0,
        chiplet_gateways=bool(chiplet_gateways),
        temperature_rise_k=temperature_rise_k != 0.0,
        power_fraction=power_fraction != 1.0,
        seed=seed != 0,
        node=node is not None,
        nodes=bool(nodes),
    )
    if duration_s is not None and duration_s <= 0:
        raise ConfigurationError(
            f"chiplet-mac-degrade needs a positive duration_s (or none "
            f"for a permanent degradation), got {duration_s}"
        )
    if not 0.0 < mac_fraction < 1.0:
        raise ConfigurationError(
            f"chiplet-mac-degrade needs mac_fraction in (0, 1) — 1.0 "
            f"(the spec default) means no degradation; got {mac_fraction}"
        )
    return ChipletMacDegrade(
        at_s=at_s, mac_fraction=mac_fraction, duration_s=duration_s
    )


HAZARD_FACTORIES: dict[str, Callable[..., HazardEvent]] = {
    "gateway-fail": make_gateway_fail,
    "gateway-repair": make_gateway_repair,
    "ring-drift": make_ring_drift,
    "laser-degradation": make_laser_degradation,
    "chiplet-mac-degrade": make_mac_degrade,
}
"""Hazard-event factories keyed by spec kind.  The ``HAZARDS`` registry
(:mod:`repro.studies.registry`) shares this dict, so externally
registered hazard kinds are buildable from specs."""


# ---------------------------------------------------------------------------
# The timeline.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HazardTimeline:
    """Chronologically ordered hazard events for one simulation run."""

    events: tuple[HazardEvent, ...] = ()

    def __post_init__(self) -> None:
        previous = 0.0
        for event in self.events:
            if event.at_s < 0:
                raise ConfigurationError(
                    f"hazard event times must be >= 0, got {event.at_s}"
                )
            if event.at_s < previous:
                raise ConfigurationError(
                    "hazard events must be listed chronologically: "
                    f"{event.kind} at t={event.at_s}s follows "
                    f"t={previous}s"
                )
            previous = event.at_s

    def __bool__(self) -> bool:
        return bool(self.events)

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "HazardTimeline":
        """The static plan as a timeline: one fail event at ``t=0``."""
        if plan.memory_gateways_failed < 0:
            raise ConfigurationError(
                "memory gateway failures must be >= 0, got "
                f"{plan.memory_gateways_failed}"
            )
        if plan.total_failed == 0:
            return cls()
        return cls((GatewayFail(
            at_s=0.0,
            memory_gateways=plan.memory_gateways_failed,
            chiplet_gateways=tuple(
                (chiplet_id, write, read)
                for chiplet_id, (write, read)
                in plan.chiplet_gateways_failed.items()
            ),
        ),))


# ---------------------------------------------------------------------------
# Degradation accounting.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HazardRecord:
    """One applied hazard event and its capacity delta.

    Plain picklable data: serving results carry these through the
    cache and the JSON/CSV export path.  Gateway deltas are negative
    for failures and positive for repairs; ``wavelength_fraction`` is
    the hazard multiplier on every channel's comb after this event
    (1.0 = full comb).  ``end_s`` is set for transient events.
    """

    kind: str
    start_s: float
    end_s: float | None = None
    memory_gateways_delta: int = 0
    chiplet_gateways_delta: int = 0
    wavelength_fraction: float = 1.0


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


class HazardEngine:
    """Applies a hazard timeline to a live fabric, mid-simulation.

    The engine wraps the fabric's ``set_active_*`` hooks so controller
    decisions can never exceed the *currently* surviving resources,
    applies every ``t=0`` event synchronously at construction (the
    static-plan case therefore reduces exactly to the historical
    :class:`FaultInjector` behaviour), and schedules later events as an
    ordinary process in the fabric's environment — capacities change
    while requests are in flight, and the reconfiguration controllers
    re-adapt on their next epoch.
    """

    def __init__(self, fabric: PhotonicInterposerFabric,
                 timeline: HazardTimeline):
        self.fabric = fabric
        self.env = fabric.env
        self.timeline = timeline
        self.records: list[HazardRecord] = []
        self._failed_memory = 0
        self._failed_chiplets: dict[str, list[int]] = {
            chiplet_id: [0, 0] for chiplet_id in fabric.inventories
        }
        self._active_fractions: dict[int, float] = {}
        self._controller_fraction = fabric._wavelength_fraction
        self._degraded_since: float | None = None
        self._degraded_intervals: list[tuple[float, float]] = []
        self._validate()
        self._wrap_hooks()
        actions = self._actions()
        for at_s, _, apply in actions:
            if at_s > 0.0:
                break
            apply()
        pending = [action for action in actions if action[0] > 0.0]
        if pending:
            self._process = self.env.process(self._run(pending))

    # -- validation ---------------------------------------------------------------

    def _known_chiplet(self, chiplet_id: str):
        inventory = self.fabric.inventories.get(chiplet_id)
        if inventory is None:
            raise UnknownNameError(
                "chiplet", chiplet_id, sorted(self.fabric.inventories)
            )
        return inventory

    def _validate(self) -> None:
        """Walk the timeline once: every instant must leave survivors.

        Error messages carry observed vs allowed counts so a bad spec
        is fixable without reading the floorplan source.
        """
        config = self.fabric.config
        failed_memory = 0
        failed = {cid: [0, 0] for cid in self.fabric.inventories}
        for event in self.timeline.events:
            if isinstance(event, (GatewayFail, GatewayRepair)):
                if event.memory_gateways < 0:
                    raise ConfigurationError(
                        f"{event.kind} at t={event.at_s}s: memory gateway "
                        f"count must be >= 0, got {event.memory_gateways}"
                    )
                for chiplet_id, n_write, n_read in event.chiplet_gateways:
                    if n_write < 0 or n_read < 0:
                        raise ConfigurationError(
                            f"{chiplet_id}: {event.kind} at "
                            f"t={event.at_s}s gateway counts must be "
                            f">= 0, got ({n_write}, {n_read})"
                        )
            if isinstance(event, GatewayFail):
                failed_memory += event.memory_gateways
                if failed_memory >= config.n_memory_write_gateways:
                    raise ConfigurationError(
                        f"gateway-fail at t={event.at_s}s leaves no memory "
                        f"writer gateway alive: {failed_memory} cumulative "
                        f"failure(s) of {config.n_memory_write_gateways} "
                        f"gateways (at most "
                        f"{config.n_memory_write_gateways - 1} may be down)"
                    )
                for chiplet_id, n_write, n_read in event.chiplet_gateways:
                    inventory = self._known_chiplet(chiplet_id)
                    failed[chiplet_id][0] += n_write
                    failed[chiplet_id][1] += n_read
                    if failed[chiplet_id][0] >= inventory.n_write_gateways:
                        raise ConfigurationError(
                            f"{chiplet_id}: gateway-fail at t={event.at_s}s "
                            f"leaves no write gateway alive: "
                            f"{failed[chiplet_id][0]} cumulative failure(s) "
                            f"of {inventory.n_write_gateways} gateways (at "
                            f"most {inventory.n_write_gateways - 1} may be "
                            "down)"
                        )
                    if failed[chiplet_id][1] >= inventory.n_read_gateways:
                        raise ConfigurationError(
                            f"{chiplet_id}: gateway-fail at t={event.at_s}s "
                            f"leaves no read gateway alive: "
                            f"{failed[chiplet_id][1]} cumulative failure(s) "
                            f"of {inventory.n_read_gateways} gateways (at "
                            f"most {inventory.n_read_gateways - 1} may be "
                            "down)"
                        )
            elif isinstance(event, GatewayRepair):
                if event.memory_gateways > failed_memory:
                    raise ConfigurationError(
                        f"gateway-repair at t={event.at_s}s repairs "
                        f"{event.memory_gateways} memory gateway(s) but "
                        f"only {failed_memory} is/are failed at that point"
                    )
                failed_memory -= event.memory_gateways
                for chiplet_id, n_write, n_read in event.chiplet_gateways:
                    self._known_chiplet(chiplet_id)
                    if (n_write > failed[chiplet_id][0]
                            or n_read > failed[chiplet_id][1]):
                        raise ConfigurationError(
                            f"{chiplet_id}: gateway-repair at "
                            f"t={event.at_s}s repairs ({n_write}, {n_read}) "
                            f"gateway(s) but only "
                            f"({failed[chiplet_id][0]}, "
                            f"{failed[chiplet_id][1]}) is/are failed at "
                            "that point"
                        )
                    failed[chiplet_id][0] -= n_write
                    failed[chiplet_id][1] -= n_read

    # -- surviving capacity -------------------------------------------------------

    def surviving_memory_gateways(self) -> int:
        return (
            self.fabric.config.n_memory_write_gateways - self._failed_memory
        )

    def surviving_chiplet_gateways(self, chiplet_id: str) -> tuple[int, int]:
        inventory = self.fabric.inventories[chiplet_id]
        failed_w, failed_r = self._failed_chiplets[chiplet_id]
        return (
            inventory.n_write_gateways - failed_w,
            inventory.n_read_gateways - failed_r,
        )

    @property
    def hazard_wavelength_fraction(self) -> float:
        """Product of every active transient's comb multiplier."""
        fraction = 1.0
        for multiplier in self._active_fractions.values():
            fraction *= multiplier
        return fraction

    def _effective_fraction(self) -> float:
        hazard = self.hazard_wavelength_fraction
        if hazard >= 1.0:
            # No active transient: exact pass-through, so wrapping the
            # hook is invisible to fault-free and static-plan runs.
            return self._controller_fraction
        floor = 1.0 / self.fabric.config.n_wavelengths
        return max(floor, self._controller_fraction * hazard)

    # -- hook wrapping ------------------------------------------------------------

    def _wrap_hooks(self) -> None:
        original_memory = self.fabric.set_active_memory_gateways
        original_chiplet = self.fabric.set_active_chiplet_gateways
        self._original_fraction = self.fabric.set_wavelength_fraction

        def capped_memory(count: int) -> None:
            original_memory(min(count, self.surviving_memory_gateways()))

        def capped_chiplet(chiplet_id: str, n_write: int,
                           n_read: int) -> None:
            max_w, max_r = self.surviving_chiplet_gateways(chiplet_id)
            original_chiplet(
                chiplet_id, min(n_write, max_w), min(n_read, max_r)
            )

        def scaled_fraction(fraction: float) -> None:
            self._controller_fraction = fraction
            self._original_fraction(self._effective_fraction())

        self.fabric.set_active_memory_gateways = capped_memory
        self.fabric.set_active_chiplet_gateways = capped_chiplet
        self.fabric.set_wavelength_fraction = scaled_fraction

    # -- event application --------------------------------------------------------

    def _apply_caps(self) -> None:
        """Clamp the current configuration to the surviving resources."""
        self.fabric.set_active_memory_gateways(
            min(
                int(self.fabric.active_memory_gateways.value),
                self.surviving_memory_gateways(),
            )
        )
        for chiplet_id in self.fabric.inventories:
            max_w, max_r = self.surviving_chiplet_gateways(chiplet_id)
            self.fabric.set_active_chiplet_gateways(
                chiplet_id,
                min(int(self.fabric.active_write_gateways[chiplet_id].value),
                    max_w),
                min(int(self.fabric.active_read_gateways[chiplet_id].value),
                    max_r),
            )

    def _update_degraded(self) -> None:
        degraded = (
            self._failed_memory > 0
            or any(w or r for w, r in self._failed_chiplets.values())
            or self.hazard_wavelength_fraction < 1.0
        )
        now = self.env.now
        if degraded and self._degraded_since is None:
            self._degraded_since = now
        elif not degraded and self._degraded_since is not None:
            self._degraded_intervals.append((self._degraded_since, now))
            self._degraded_since = None

    def _apply_gateway_fail(self, event: GatewayFail) -> None:
        self._failed_memory += event.memory_gateways
        for chiplet_id, n_write, n_read in event.chiplet_gateways:
            self._failed_chiplets[chiplet_id][0] += n_write
            self._failed_chiplets[chiplet_id][1] += n_read
        self._apply_caps()
        self.records.append(HazardRecord(
            kind=event.kind,
            start_s=self.env.now,
            memory_gateways_delta=-event.memory_gateways,
            chiplet_gateways_delta=-sum(
                w + r for _, w, r in event.chiplet_gateways
            ),
            wavelength_fraction=self.hazard_wavelength_fraction,
        ))
        self._update_degraded()

    def _apply_gateway_repair(self, event: GatewayRepair) -> None:
        self._failed_memory -= event.memory_gateways
        for chiplet_id, n_write, n_read in event.chiplet_gateways:
            self._failed_chiplets[chiplet_id][0] -= n_write
            self._failed_chiplets[chiplet_id][1] -= n_read
        # Capacity is restored, not activity: the controller scales the
        # channels back up on its next epoch decision.
        self.records.append(HazardRecord(
            kind=event.kind,
            start_s=self.env.now,
            memory_gateways_delta=event.memory_gateways,
            chiplet_gateways_delta=event.total_gateways
            - event.memory_gateways,
            wavelength_fraction=self.hazard_wavelength_fraction,
        ))
        self._update_degraded()

    def _apply_transient_begin(self, index: int, event) -> None:
        usable = event.usable_fraction(self.fabric.config.n_wavelengths)
        self._active_fractions[index] = usable
        self._original_fraction(self._effective_fraction())
        self.records.append(HazardRecord(
            kind=event.kind,
            start_s=self.env.now,
            end_s=self.env.now + event.duration_s,
            wavelength_fraction=self.hazard_wavelength_fraction,
        ))
        self._update_degraded()

    def _apply_transient_end(self, index: int) -> None:
        self._active_fractions.pop(index, None)
        self._original_fraction(self._effective_fraction())
        self._update_degraded()

    # -- scheduling ---------------------------------------------------------------

    def _actions(self) -> list[tuple[float, int, Callable[[], None]]]:
        """(time, sequence, apply) actions, chronologically sorted."""
        actions: list[tuple[float, int, Callable[[], None]]] = []
        sequence = 0
        for index, event in enumerate(self.timeline.events):
            if isinstance(event, GatewayFail):
                apply = (lambda e=event: self._apply_gateway_fail(e))
            elif isinstance(event, GatewayRepair):
                apply = (lambda e=event: self._apply_gateway_repair(e))
            else:
                apply = (lambda i=index, e=event:
                         self._apply_transient_begin(i, e))
                actions.append((
                    event.at_s + event.duration_s, sequence + 1,
                    lambda i=index: self._apply_transient_end(i),
                ))
            actions.append((event.at_s, sequence, apply))
            sequence += 2
        actions.sort(key=lambda action: (action[0], action[1]))
        return actions

    def _run(self, pending):
        for at_s, _, apply in pending:
            delay = at_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            apply()

    # -- degradation summary ------------------------------------------------------

    def degraded_intervals(
        self, elapsed_s: float | None = None
    ) -> list[tuple[float, float]]:
        """Closed (start, end) spans during which capacity was reduced."""
        intervals = list(self._degraded_intervals)
        if self._degraded_since is not None:
            end = self.env.now if elapsed_s is None else elapsed_s
            intervals.append(
                (self._degraded_since, max(end, self._degraded_since))
            )
        return intervals

    def time_degraded_s(self, elapsed_s: float | None = None) -> float:
        """Total simulated time spent with reduced capacity."""
        return sum(
            end - start for start, end in self.degraded_intervals(elapsed_s)
        )

    def fault_window(
        self, elapsed_s: float | None = None
    ) -> tuple[float, float] | None:
        """(first degradation onset, last recovery) — or None if clean."""
        intervals = self.degraded_intervals(elapsed_s)
        if not intervals:
            return None
        return intervals[0][0], intervals[-1][1]


class FaultInjector:
    """Static fault injection: the degenerate hazard timeline.

    Kept as the one-shot API — applies a :class:`FaultPlan` by running a
    :class:`HazardEngine` over :meth:`HazardTimeline.from_plan`, which
    fires everything synchronously at construction: bit-identical to the
    pre-hazard-engine injector this class used to implement directly.
    """

    def __init__(self, fabric: PhotonicInterposerFabric, plan: FaultPlan):
        self.fabric = fabric
        self.plan = plan
        self.engine = HazardEngine(fabric, HazardTimeline.from_plan(plan))

    def surviving_memory_gateways(self) -> int:
        return self.engine.surviving_memory_gateways()

    def surviving_chiplet_gateways(self, chiplet_id: str) -> tuple[int, int]:
        return self.engine.surviving_chiplet_gateways(chiplet_id)


def uniform_fault_plan(fabric: PhotonicInterposerFabric,
                       n_failures: int) -> FaultPlan:
    """Spread ``n_failures`` dead gateways round-robin over the system.

    Deterministic: memory gateways fail first (they are the shared
    resource, i.e. the worst case), then one write gateway per chiplet
    in floorplan order.
    """
    if n_failures < 0:
        raise ConfigurationError("failure count must be >= 0")
    config = fabric.config
    memory_failures = min(n_failures,
                          config.n_memory_write_gateways - 1)
    remaining = n_failures - memory_failures
    chiplet_failures: dict[str, tuple[int, int]] = {}
    chiplet_ids = sorted(fabric.inventories)
    index = 0
    while remaining > 0 and chiplet_ids:
        chiplet_id = chiplet_ids[index % len(chiplet_ids)]
        inventory = fabric.inventories[chiplet_id]
        write, read = chiplet_failures.get(chiplet_id, (0, 0))
        if write < inventory.n_write_gateways - 1:
            chiplet_failures[chiplet_id] = (write + 1, read)
            remaining -= 1
        index += 1
        if index > 10 * len(chiplet_ids):
            raise ConfigurationError(
                f"cannot place {n_failures} failures with one survivor "
                "per resource"
            )
    return FaultPlan(
        memory_gateways_failed=memory_failures,
        chiplet_gateways_failed=chiplet_failures,
    )
