"""Gateway fault injection for the photonic interposer.

The paper builds on fault-tolerance work ([39] SiPterposer, [40] DeFT):
2.5D integration must survive defective interconnect resources.  The
ReSiPI fabric has natural redundancy — each chiplet owns several
gateways and the memory chiplet several writer gateways — so a failed
gateway can be masked by treating it as permanently deactivated, at a
bandwidth cost the controller then works around.

:class:`FaultInjector` marks gateways dead, constrains the fabric and
controller decisions accordingly, and reports the degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import ConfigurationError
from .fabric import PhotonicInterposerFabric


@dataclass
class FaultPlan:
    """Which gateway resources are dead.

    ``memory_gateways_failed`` removes memory-side writer gateways;
    ``chiplet_gateways_failed`` maps chiplet id -> (write, read) failed
    counts.
    """

    memory_gateways_failed: int = 0
    chiplet_gateways_failed: dict[str, tuple[int, int]] = field(
        default_factory=dict
    )

    @property
    def total_failed(self) -> int:
        return self.memory_gateways_failed + sum(
            w + r for w, r in self.chiplet_gateways_failed.values()
        )


class FaultInjector:
    """Applies a fault plan to a fabric and keeps controllers honest.

    After injection, the fabric's channel capacities are capped at the
    surviving-gateway counts.  Because controllers call the fabric's
    ``set_active_*`` hooks, the injector wraps those hooks so a decision
    can never resurrect a dead gateway.
    """

    def __init__(self, fabric: PhotonicInterposerFabric, plan: FaultPlan):
        self.fabric = fabric
        self.plan = plan
        self._validate()
        self._wrap_hooks()
        self._apply_caps()

    def _validate(self) -> None:
        config = self.fabric.config
        if not 0 <= self.plan.memory_gateways_failed < (
            config.n_memory_write_gateways
        ):
            raise ConfigurationError(
                "memory gateway failures must leave at least one alive"
            )
        for chiplet_id, (write, read) in (
            self.plan.chiplet_gateways_failed.items()
        ):
            inventory = self.fabric.inventories.get(chiplet_id)
            if inventory is None:
                raise ConfigurationError(f"unknown chiplet {chiplet_id!r}")
            if write >= inventory.n_write_gateways or write < 0:
                raise ConfigurationError(
                    f"{chiplet_id}: write failures must leave one alive"
                )
            if read >= inventory.n_read_gateways or read < 0:
                raise ConfigurationError(
                    f"{chiplet_id}: read failures must leave one alive"
                )

    # -- capacity capping -------------------------------------------------------

    def surviving_memory_gateways(self) -> int:
        return (
            self.fabric.config.n_memory_write_gateways
            - self.plan.memory_gateways_failed
        )

    def surviving_chiplet_gateways(self, chiplet_id: str) -> tuple[int, int]:
        inventory = self.fabric.inventories[chiplet_id]
        failed_w, failed_r = self.plan.chiplet_gateways_failed.get(
            chiplet_id, (0, 0)
        )
        return (
            inventory.n_write_gateways - failed_w,
            inventory.n_read_gateways - failed_r,
        )

    def _wrap_hooks(self) -> None:
        original_memory = self.fabric.set_active_memory_gateways
        original_chiplet = self.fabric.set_active_chiplet_gateways

        def capped_memory(count: int) -> None:
            original_memory(min(count, self.surviving_memory_gateways()))

        def capped_chiplet(chiplet_id: str, n_write: int,
                           n_read: int) -> None:
            max_w, max_r = self.surviving_chiplet_gateways(chiplet_id)
            original_chiplet(
                chiplet_id, min(n_write, max_w), min(n_read, max_r)
            )

        self.fabric.set_active_memory_gateways = capped_memory
        self.fabric.set_active_chiplet_gateways = capped_chiplet

    def _apply_caps(self) -> None:
        """Clamp the current configuration to the surviving resources."""
        self.fabric.set_active_memory_gateways(
            min(
                int(self.fabric.active_memory_gateways.value),
                self.surviving_memory_gateways(),
            )
        )
        for chiplet_id in self.fabric.inventories:
            max_w, max_r = self.surviving_chiplet_gateways(chiplet_id)
            self.fabric.set_active_chiplet_gateways(
                chiplet_id,
                min(int(self.fabric.active_write_gateways[chiplet_id].value),
                    max_w),
                min(int(self.fabric.active_read_gateways[chiplet_id].value),
                    max_r),
            )


def uniform_fault_plan(fabric: PhotonicInterposerFabric,
                       n_failures: int) -> FaultPlan:
    """Spread ``n_failures`` dead gateways round-robin over the system.

    Deterministic: memory gateways fail first (they are the shared
    resource, i.e. the worst case), then one write gateway per chiplet
    in floorplan order.
    """
    if n_failures < 0:
        raise ConfigurationError("failure count must be >= 0")
    config = fabric.config
    memory_failures = min(n_failures,
                          config.n_memory_write_gateways - 1)
    remaining = n_failures - memory_failures
    chiplet_failures: dict[str, tuple[int, int]] = {}
    chiplet_ids = sorted(fabric.inventories)
    index = 0
    while remaining > 0 and chiplet_ids:
        chiplet_id = chiplet_ids[index % len(chiplet_ids)]
        inventory = fabric.inventories[chiplet_id]
        write, read = chiplet_failures.get(chiplet_id, (0, 0))
        if write < inventory.n_write_gateways - 1:
            chiplet_failures[chiplet_id] = (write + 1, read)
            remaining -= 1
        index += 1
        if index > 10 * len(chiplet_ids):
            raise ConfigurationError(
                f"cannot place {n_failures} failures with one survivor "
                "per resource"
            )
    return FaultPlan(
        memory_gateways_failed=memory_failures,
        chiplet_gateways_failed=chiplet_failures,
    )
