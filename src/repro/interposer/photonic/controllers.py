"""Reconfiguration controllers for the photonic interposer.

Three policies, matching Section IV of the paper:

* :class:`ReSiPIController` [37] — monitors per-chiplet traffic in time
  epochs and tunes the **number of active gateways** through PCM
  couplers; laser power follows the active-gateway count.
* :class:`ProwavesController` [11] — tunes the **number of active
  wavelengths** globally with respect to traffic load.
* :class:`StaticController` — everything always on (the passive-network
  upper bound on performance and power; ablation baseline).

Controllers are simulation processes: they wake at every epoch boundary,
read the fabric's traffic monitor, and apply the new configuration
(PCMC/laser switching costs are charged by the fabric).
"""

from __future__ import annotations

import math

from ...config import PlatformConfig
from ...sim.core import Environment
from .fabric import PhotonicInterposerFabric


class ReSiPIController:
    """Epoch-driven gateway scaling via PCM couplers (ReSiPI [37])."""

    def __init__(
        self,
        env: Environment,
        fabric: PhotonicInterposerFabric,
        config: PlatformConfig,
        headroom: float = 1.25,
    ):
        self.env = env
        self.fabric = fabric
        self.config = config
        self.headroom = headroom
        self.decision_log: list[dict[str, int]] = []
        # Start minimal: one gateway everywhere; traffic wakes more up.
        fabric.set_active_memory_gateways(1)
        for chiplet_id in fabric.inventories:
            fabric.set_active_chiplet_gateways(chiplet_id, 1, 1)
        self._process = env.process(self._run())

    def _gateways_for_demand(self, demand_bps: float, maximum: int) -> int:
        """Gateways needed to serve a demand with headroom, at least one."""
        if demand_bps <= 0.0:
            return 1
        gateway_bw = self.config.gateway_bandwidth_bps
        needed = math.ceil(self.headroom * demand_bps / gateway_bw)
        return max(1, min(maximum, needed))

    def _run(self):
        while True:
            yield self.env.timeout(self.config.resipi_epoch_s)
            traffic = self.fabric.monitor.close_epoch()
            demand = self.fabric.monitor.demanded_bandwidth_bps(traffic)
            decisions: dict[str, int] = {}

            memory_demand = demand.get("mem_read", 0.0)
            n_memory = self._gateways_for_demand(
                memory_demand, self.config.n_memory_write_gateways
            )
            self.fabric.set_active_memory_gateways(n_memory)
            decisions["mem"] = n_memory

            for chiplet_id, inventory in self.fabric.inventories.items():
                read_demand = demand.get(f"read:{chiplet_id}", 0.0)
                write_demand = demand.get(f"write:{chiplet_id}", 0.0)
                n_read = self._gateways_for_demand(
                    read_demand, inventory.n_read_gateways
                )
                n_write = self._gateways_for_demand(
                    write_demand, inventory.n_write_gateways
                )
                self.fabric.set_active_chiplet_gateways(
                    chiplet_id, n_write, n_read
                )
                decisions[chiplet_id] = n_read + n_write
            self.decision_log.append(decisions)


class ProwavesController:
    """Epoch-driven wavelength scaling (PROWAVES [11]).

    All gateways stay active; the controller scales the active share of
    the wavelength comb to match the *peak* per-channel demand, because
    every channel shares the comb of the single laser source.
    """

    def __init__(
        self,
        env: Environment,
        fabric: PhotonicInterposerFabric,
        config: PlatformConfig,
        headroom: float = 1.25,
    ):
        self.env = env
        self.fabric = fabric
        self.config = config
        self.headroom = headroom
        self.decision_log: list[float] = []
        fabric.set_wavelength_fraction(1.0 / config.n_wavelengths)
        self._process = env.process(self._run())

    def _run(self):
        per_lambda_bw = self.config.wavelength_data_rate_bps
        n_lambda = self.config.n_wavelengths
        while True:
            yield self.env.timeout(self.config.resipi_epoch_s)
            traffic = self.fabric.monitor.close_epoch()
            demand = self.fabric.monitor.demanded_bandwidth_bps(traffic)
            # Peak per-gateway demand across channels sets the comb size.
            peak = 0.0
            mem_gateways = self.config.n_memory_write_gateways
            peak = max(peak, demand.get("mem_read", 0.0) / mem_gateways)
            for chiplet_id, inventory in self.fabric.inventories.items():
                peak = max(
                    peak,
                    demand.get(f"read:{chiplet_id}", 0.0)
                    / inventory.n_read_gateways,
                )
                peak = max(
                    peak,
                    demand.get(f"write:{chiplet_id}", 0.0)
                    / inventory.n_write_gateways,
                )
            wanted = math.ceil(self.headroom * peak / per_lambda_bw)
            wanted = max(1, min(n_lambda, wanted))
            fraction = wanted / n_lambda
            self.fabric.set_wavelength_fraction(fraction)
            self.decision_log.append(fraction)


class StaticController:
    """No reconfiguration: all gateways and wavelengths always active."""

    def __init__(
        self,
        env: Environment,
        fabric: PhotonicInterposerFabric,
        config: PlatformConfig,
    ):
        self.env = env
        self.fabric = fabric
        self.decision_log: list[None] = []
        # The fabric boots fully active; drain epochs so monitors don't grow.
        self._process = env.process(self._run(config.resipi_epoch_s))

    def _run(self, epoch_s: float):
        while True:
            yield self.env.timeout(epoch_s)
            self.fabric.monitor.close_epoch()


CONTROLLER_FACTORIES = {
    "resipi": ReSiPIController,
    "prowaves": ProwavesController,
    "static": StaticController,
}
"""Controller constructors keyed by policy name."""

EPOCH_CONTROLLERS = ("resipi", "prowaves")
"""Controllers whose decisions fire on the config's epoch length
(``resipi_epoch_s``): the spec-level ``platform.controller_epoch_s``
knob applies only to these — the static controller drains monitors on
the same period but never acts on it, so the knob would be inert."""
