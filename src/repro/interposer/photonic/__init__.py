"""Silicon-photonic interposer network: fabric, link budgets, controllers."""

from .controllers import (
    CONTROLLER_FACTORIES,
    ProwavesController,
    ReSiPIController,
    StaticController,
)
from .awgr import AWGRInterposerFabric, awgr_link_budget
from .fabric import PHOTONIC_DYNAMIC_J_PER_BIT, PhotonicInterposerFabric
from .faults import (
    HAZARD_FACTORIES,
    FaultInjector,
    FaultPlan,
    GatewayFail,
    GatewayRepair,
    HazardEngine,
    HazardRecord,
    HazardTimeline,
    LaserDegradation,
    RingDriftBurst,
    uniform_fault_plan,
)
from .links import (
    INTERPOSER_WAVEGUIDE_LOSS_DB_PER_CM,
    swmr_read_budget,
    swsr_write_budget,
    worst_case_write_budget,
)

__all__ = [
    "CONTROLLER_FACTORIES",
    "ProwavesController",
    "ReSiPIController",
    "StaticController",
    "AWGRInterposerFabric",
    "awgr_link_budget",
    "FaultInjector",
    "FaultPlan",
    "GatewayFail",
    "GatewayRepair",
    "HAZARD_FACTORIES",
    "HazardEngine",
    "HazardRecord",
    "HazardTimeline",
    "LaserDegradation",
    "RingDriftBurst",
    "uniform_fault_plan",
    "PHOTONIC_DYNAMIC_J_PER_BIT",
    "PhotonicInterposerFabric",
    "INTERPOSER_WAVEGUIDE_LOSS_DB_PER_CM",
    "swmr_read_budget",
    "swsr_write_budget",
    "worst_case_write_budget",
]
