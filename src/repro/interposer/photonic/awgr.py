"""AWGR-based photonic interposer (the [10] alternative).

Section IV describes arrayed-waveguide-grating-router interposers as the
other photonic option: an N x N AWGR provides passive all-to-all
connectivity by cyclic wavelength routing — wavelength ``w`` entering
input port ``p`` exits output port ``(p + w) mod N``.  Every chiplet
pair owns a fixed ``n_lambda / N`` wavelength slice, with no arbitration
and no reconfiguration.

The contrast with the ReSiPI fabric is architectural: the AWGR is
non-blocking for *uniform all-to-all* traffic, but DNN inference traffic
is a memory hub pattern — every chiplet mostly talks to the HBM chiplet
— so the fixed per-pair slice (e.g. 7 of 64 wavelengths = 84 Gb/s)
becomes the bottleneck while most of the comb idles.  The topology
ablation (``benchmarks/bench_awgr_comparison.py``) quantifies this,
motivating the paper's choice of SWMR/SWSR trees rooted at memory.
"""

from __future__ import annotations

from ...config import PlatformConfig
from ...photonics import constants as ph
from ...photonics.laser import LaserSource
from ...photonics.link_budget import LinkBudget
from ...photonics.photodetector import Photodetector
from ...power import params as ep
from ...sim.core import Environment, Event
from ...sim.resources import BandwidthChannel, Store
from ..base import DEFAULT_CHUNK_BITS, InterposerFabric, NetworkEnergyReport
from ..topology import Floorplan
from .fabric import PHOTONIC_DYNAMIC_J_PER_BIT

AWGR_INSERTION_LOSS_DB = 3.0
"""Insertion loss through the AWGR star (dB); typical silicon AWGR."""


def awgr_link_budget(config: PlatformConfig,
                     floorplan: Floorplan) -> LinkBudget:
    """Worst-case laser-to-PD budget through the AWGR."""
    budget = LinkBudget()
    budget.add("fiber_coupler", ph.GRATING_COUPLER_LOSS_DB)
    budget.add("modulator_insertion", ph.MR_MODULATION_INSERTION_LOSS_DB)
    budget.add(
        "writer_row_passby", ph.MR_THROUGH_LOSS_DB,
        count=max(0, config.n_wavelengths - 1),
    )
    # Port waveguides to/from the central AWGR plus the device itself.
    longest_mm = max(
        floorplan.manhattan_distance_mm("mem-0", site.chiplet_id)
        for site in floorplan.compute_sites
    )
    budget.add("port_waveguides", 0.05 * longest_mm)  # 0.5 dB/cm
    budget.add("awgr", AWGR_INSERTION_LOSS_DB)
    budget.add("filter_drop", ph.MR_DROP_LOSS_DB)
    return budget


class AWGRInterposerFabric(InterposerFabric):
    """Passive all-to-all wavelength-routed interposer."""

    def __init__(
        self,
        env: Environment,
        config: PlatformConfig,
        floorplan: Floorplan,
        chunk_bits: float = DEFAULT_CHUNK_BITS,
    ):
        super().__init__(env)
        self.config = config
        self.floorplan = floorplan
        self.chunk_bits = chunk_bits
        self.n_ports = len(floorplan.sites)
        self.wavelengths_per_pair = max(
            1, config.n_wavelengths // self.n_ports
        )
        pair_bw = (
            self.wavelengths_per_pair * config.wavelength_data_rate_bps
        )
        # One dedicated channel per ordered chiplet pair touching memory
        # (DNN traffic only uses the memory hub; lazily created).
        self._pair_bw = pair_bw
        self.channels: dict[tuple[str, str], BandwidthChannel] = {}
        self.hbm_channel = BandwidthChannel(
            env, config.hbm_internal_bandwidth_bps, name="hbm"
        )

    def _channel(self, src: str, dst: str) -> BandwidthChannel:
        key = (src, dst)
        if key not in self.channels:
            self.channels[key] = BandwidthChannel(
                self.env, self._pair_bw, name=f"awgr:{src}->{dst}"
            )
        return self.channels[key]

    def iter_channels(self):
        """HBM port plus every pair channel the run actually touched."""
        yield self.hbm_channel
        yield from self.channels.values()

    def _chunks(self, bits: float) -> list[float]:
        if bits <= 0:
            return []
        full, remainder = divmod(bits, self.chunk_bits)
        chunks = [self.chunk_bits] * int(full)
        if remainder > 0:
            chunks.append(remainder)
        return chunks

    def _piped(self, first: BandwidthChannel, second: BandwidthChannel,
               bits: float):
        """Two-stage pipeline (HBM <-> AWGR pair channel)."""
        chunks = self._chunks(bits)
        if not chunks:
            return
        buffer: Store = Store(self.env)
        done = self.env.event()

        def stage_one():
            for chunk in chunks:
                yield self.env.process(first.transfer(chunk))
                buffer.put(chunk)

        def stage_two():
            for _ in range(len(chunks)):
                chunk = yield buffer.get()
                yield self.env.process(second.transfer(chunk))
            done.succeed()

        self.env.process(stage_one())
        self.env.process(stage_two())
        yield done
        yield self.env.timeout(
            self.config.gateway_conversion_latency_s
            + self.config.gateway_protocol_overhead_s
        )

    def read(self, dst_chiplet: str, bits: float,
             multicast: tuple[str, ...] | None = None) -> Event:
        """Memory -> chiplet(s); each destination uses its own fixed
        wavelength slice (no shared broadcast medium)."""
        destinations = multicast if multicast else (dst_chiplet,)
        self.bits_read += bits * len(destinations)
        transfers = [
            self.env.process(
                self._piped(self.hbm_channel,
                            self._channel("mem-0", destination), bits)
            )
            for destination in destinations
        ]
        return self.env.all_of(transfers)

    def write(self, src_chiplet: str, bits: float) -> Event:
        self.bits_written += bits
        return self.env.process(
            self._piped(self._channel(src_chiplet, "mem-0"),
                        self.hbm_channel, bits)
        )

    def energy_report(self) -> NetworkEnergyReport:
        """Always-on energy: a passive AWGR cannot gate anything."""
        elapsed = self.env.now
        n_lambda = self.config.n_wavelengths
        detector = Photodetector()
        laser = LaserSource.off_chip()
        budget = awgr_link_budget(self.config, self.floorplan)
        laser_w = self.n_ports * laser.electrical_power_w(
            budget.required_on_chip_power_w(detector) * n_lambda
        )
        writer_w = self.n_ports * (
            ph.MODULATOR_STATIC_POWER_W * n_lambda
            + ph.GATEWAY_BUFFER_STATIC_POWER_W
        )
        reader_w = self.n_ports * (
            ph.PD_TIA_POWER_W * n_lambda + ph.GATEWAY_BUFFER_STATIC_POWER_W
        )
        trimming_w = (
            2.0 * self.n_ports * n_lambda
            * ph.MR_TO_TUNING_POWER_W_PER_NM * ph.MR_THERMAL_TRIMMING_NM
        )
        static_w = (
            laser_w + writer_w + reader_w + trimming_w
            + ep.HBM_STATIC_POWER_W
            + ep.MEMORY_CHIPLET_LOGIC_STATIC_POWER_W
        )
        dynamic_j = self.total_bits_moved * (
            PHOTONIC_DYNAMIC_J_PER_BIT + ep.HBM_ENERGY_J_PER_BIT
        )
        return NetworkEnergyReport(
            elapsed_s=elapsed,
            static_energy_j=static_w * elapsed,
            dynamic_energy_j=dynamic_j,
            breakdown_j={
                "laser": laser_w * elapsed,
                "gateway_electronics": (writer_w + reader_w) * elapsed,
                "ring_trimming": trimming_w * elapsed,
                "serdes_modulate_receive": dynamic_j,
            },
        )
