"""Silicon-photonic interposer fabric (Section V, Fig. 6).

Transfer paths are staged pipelines of bandwidth channels:

* **read** (memory -> compute): HBM internal port -> memory writer
  gateways (SWMR channels, aggregated elastically) -> destination
  chiplet's reader gateways.  Multicast charges the shared stages once.
* **write** (compute -> memory): source chiplet's writer gateways (SWSR
  channels) -> HBM internal port.

Gateway counts are *elastic*: a reconfiguration controller (ReSiPI,
PROWAVES, or a static policy) owns how many gateways/wavelengths are
active, and the fabric exposes ``set_*`` hooks that rescale the channel
bandwidths and the power-accounting signals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ...config import PlatformConfig
from ...errors import ConfigurationError
from ...photonics import constants as ph
from ...photonics.laser import LaserSource
from ...photonics.photodetector import Photodetector
from ...power import params as ep
from ...sim.core import Environment, Event
from ...sim.resources import BandwidthChannel
from ...sim.stats import EpochTrafficMonitor, TimeWeightedValue
from ..base import DEFAULT_CHUNK_BITS, InterposerFabric, NetworkEnergyReport
from ..topology import Floorplan
from .links import swmr_read_budget, worst_case_write_budget

PHOTONIC_DYNAMIC_J_PER_BIT = (
    2.0 * ph.SERDES_ENERGY_J_PER_BIT
    + ph.MODULATOR_DRIVER_ENERGY_J_PER_BIT
    + 2.0 * ep.MICROBUMP_ENERGY_J_PER_BIT
)
"""Per-bit dynamic energy of one interposer traversal: serialize +
modulate + receive + deserialize + two microbump crossings."""


@dataclass(frozen=True)
class GatewayInventory:
    """Gateway counts for one compute chiplet."""

    chiplet_id: str
    n_write_gateways: int
    n_read_gateways: int


class _ChunkRelay:
    """One pipeline stage: chunks through a channel, handed downstream.

    The callback replacement for the seed's pump/drain processes: each
    completed chunk is recorded against the epoch monitor, delivered to
    the next stage, and only then is the *next* queued chunk requested —
    one chunk in flight at a time, so the private queue here never
    occupies the channel and concurrent messages still interleave
    chunk-by-chunk in strict channel FIFO exactly as the process
    pipeline did.
    """

    __slots__ = ("channel", "monitor", "key", "deliver", "remaining",
                 "on_complete", "_queue", "_busy", "_current", "_advance_cb")

    def __init__(self, channel: BandwidthChannel, monitor, key, deliver,
                 remaining: int, on_complete):
        self.channel = channel
        self.monitor = monitor
        self.key = key
        self.deliver = deliver
        self.remaining = remaining
        self.on_complete = on_complete
        self._queue: deque = deque()
        self._busy = False
        self._current = 0.0
        self._advance_cb = self._advance  # bind once, reuse per chunk

    def feed(self, chunk: float) -> None:
        if self._busy:
            self._queue.append(chunk)
            return
        self._busy = True
        self._current = chunk
        self.channel.request_transfer(chunk, self._advance_cb)

    def _advance(self) -> None:
        chunk = self._current
        # Re-request before delivering: the channel has already granted
        # its next waiter, so this queues fairly behind other messages.
        if self._queue:
            nxt = self._queue.popleft()
            self._current = nxt
            self.channel.request_transfer(nxt, self._advance_cb)
        else:
            self._busy = False
        if self.key is not None:
            self.monitor.record(self.key, chunk)
        if self.deliver is not None:
            self.deliver(chunk)
        self.remaining -= 1
        if self.remaining == 0 and self.on_complete is not None:
            self.on_complete()


class PhotonicInterposerFabric(InterposerFabric):
    """The reconfigurable photonic interposer network."""

    def __init__(
        self,
        env: Environment,
        config: PlatformConfig,
        floorplan: Floorplan,
        chunk_bits: float = DEFAULT_CHUNK_BITS,
    ):
        super().__init__(env)
        self.config = config
        self.floorplan = floorplan
        self.chunk_bits = chunk_bits
        self._gateway_bw = config.gateway_bandwidth_bps
        self._wavelength_fraction = 1.0

        # -- channels -----------------------------------------------------
        self.hbm_channel = BandwidthChannel(
            env, config.hbm_internal_bandwidth_bps, name="hbm"
        )
        self.memory_write_channel = BandwidthChannel(
            env,
            config.n_memory_write_gateways * self._gateway_bw,
            name="mem-write-gateways",
        )
        self.chiplet_read_channels: dict[str, BandwidthChannel] = {}
        self.chiplet_write_channels: dict[str, BandwidthChannel] = {}
        self.inventories: dict[str, GatewayInventory] = {}
        for site in floorplan.compute_sites:
            group = config.group_by_kind(site.kind)
            inventory = GatewayInventory(
                chiplet_id=site.chiplet_id,
                n_write_gateways=group.gateways_per_chiplet,
                n_read_gateways=group.gateways_per_chiplet,
            )
            self.inventories[site.chiplet_id] = inventory
            self.chiplet_read_channels[site.chiplet_id] = BandwidthChannel(
                env,
                inventory.n_read_gateways * self._gateway_bw,
                name=f"{site.chiplet_id}-read",
            )
            self.chiplet_write_channels[site.chiplet_id] = BandwidthChannel(
                env,
                inventory.n_write_gateways * self._gateway_bw,
                name=f"{site.chiplet_id}-write",
            )

        # -- controller-visible state ------------------------------------------
        self.active_memory_gateways = TimeWeightedValue(
            env, float(config.n_memory_write_gateways)
        )
        self.active_write_gateways: dict[str, TimeWeightedValue] = {}
        self.active_read_gateways: dict[str, TimeWeightedValue] = {}
        for chiplet_id, inventory in self.inventories.items():
            self.active_write_gateways[chiplet_id] = TimeWeightedValue(
                env, float(inventory.n_write_gateways)
            )
            self.active_read_gateways[chiplet_id] = TimeWeightedValue(
                env, float(inventory.n_read_gateways)
            )
        self.monitor = EpochTrafficMonitor(env, config.resipi_epoch_s)
        self.pcmc_energy_j = 0.0
        self.reconfiguration_count = 0
        self._desired_bandwidth: dict[str, float] = {}

        # -- power-model ingredients ---------------------------------------------
        detector = Photodetector()
        laser = LaserSource.off_chip()
        read_budget = swmr_read_budget(config, floorplan)
        write_budget = worst_case_write_budget(config, floorplan)
        self._laser_w_per_mem_gateway = laser.electrical_power_w(
            read_budget.required_on_chip_power_w(detector)
            * config.n_wavelengths
        )
        self._laser_w_per_compute_gateway = laser.electrical_power_w(
            write_budget.required_on_chip_power_w(detector)
            * config.n_wavelengths
        )
        self._propagation_delay_s = (
            floorplan.broadcast_waveguide_length_m("mem-0")
            * ph.GROUP_INDEX_SOI
            / 299_792_458.0
        )
        self._transfer_tail_s = (
            self._propagation_delay_s
            + config.gateway_conversion_latency_s
            + config.gateway_protocol_overhead_s
        )

    # -- controller hooks ---------------------------------------------------------

    def _apply_bandwidth(self, channel: BandwidthChannel, target_bps: float,
                         increase: bool) -> None:
        """Apply a channel bandwidth change, honouring PCMC write time.

        Capacity reductions are immediate (light simply stops being
        delivered); capacity increases only take effect once the PCM
        cells have been re-amorphised (~1 us), so a demand spike pays one
        epoch of lag — the ReSiPI behaviour.
        """
        if (channel._bandwidth_bps == target_bps
                and self._desired_bandwidth.get(channel.name) == target_bps):
            # Already at (and settled on) this rate: re-asserting it is
            # a no-op either way, and steady-state epochs do so for
            # every channel.
            return
        self._desired_bandwidth[channel.name] = target_bps
        if not increase:
            channel.set_bandwidth(target_bps)
            return

        def deferred():
            yield self.env.timeout(ph.PCMC_SWITCHING_TIME_S)
            # A newer decision may have superseded this one.
            if self._desired_bandwidth.get(channel.name) == target_bps:
                channel.set_bandwidth(target_bps)

        self.env.process(deferred())

    def set_active_memory_gateways(self, count: int) -> None:
        """Rescale the memory-side SWMR write capacity."""
        maximum = self.config.n_memory_write_gateways
        if not 1 <= count <= maximum:
            raise ConfigurationError(
                f"memory gateways must be in [1, {maximum}], got {count}"
            )
        previous = int(self.active_memory_gateways.value)
        if count != previous:
            self.reconfiguration_count += 1
            self.pcmc_energy_j += ph.PCMC_SWITCHING_ENERGY_J * abs(
                count - previous
            )
        self.active_memory_gateways.set(float(count))
        self._apply_bandwidth(
            self.memory_write_channel,
            count * self._gateway_bw * self._wavelength_fraction,
            increase=count > previous,
        )

    def set_active_chiplet_gateways(
        self, chiplet_id: str, n_write: int, n_read: int
    ) -> None:
        """Rescale one compute chiplet's gateway counts."""
        inventory = self.inventories[chiplet_id]
        if not 1 <= n_write <= inventory.n_write_gateways:
            raise ConfigurationError(
                f"{chiplet_id}: write gateways must be in "
                f"[1, {inventory.n_write_gateways}], got {n_write}"
            )
        if not 1 <= n_read <= inventory.n_read_gateways:
            raise ConfigurationError(
                f"{chiplet_id}: read gateways must be in "
                f"[1, {inventory.n_read_gateways}], got {n_read}"
            )
        previous_write = int(self.active_write_gateways[chiplet_id].value)
        previous_read = int(self.active_read_gateways[chiplet_id].value)
        delta = abs(n_write - previous_write) + abs(n_read - previous_read)
        if delta:
            self.reconfiguration_count += 1
            self.pcmc_energy_j += ph.PCMC_SWITCHING_ENERGY_J * delta
        self.active_write_gateways[chiplet_id].set(float(n_write))
        self.active_read_gateways[chiplet_id].set(float(n_read))
        scale = self._gateway_bw * self._wavelength_fraction
        self._apply_bandwidth(
            self.chiplet_write_channels[chiplet_id], n_write * scale,
            increase=n_write > previous_write,
        )
        self._apply_bandwidth(
            self.chiplet_read_channels[chiplet_id], n_read * scale,
            increase=n_read > previous_read,
        )

    def set_wavelength_fraction(self, fraction: float) -> None:
        """Scale every channel's active wavelength share (PROWAVES)."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"wavelength fraction must be in (0, 1], got {fraction}"
            )
        self._wavelength_fraction = fraction
        self.memory_write_channel.set_bandwidth(
            self.active_memory_gateways.value * self._gateway_bw * fraction
        )
        for chiplet_id in self.inventories:
            self.set_active_chiplet_gateways(
                chiplet_id,
                int(self.active_write_gateways[chiplet_id].value),
                int(self.active_read_gateways[chiplet_id].value),
            )

    def iter_channels(self):
        """HBM port, SWMR writer stage, then per-chiplet reader/writers."""
        yield self.hbm_channel
        yield self.memory_write_channel
        yield from self.chiplet_read_channels.values()
        yield from self.chiplet_write_channels.values()

    # -- transfers -------------------------------------------------------------------

    def _chunks(self, bits: float) -> list[float]:
        """Split a payload into channel-granularity chunks."""
        if bits <= 0:
            return []
        full, remainder = divmod(bits, self.chunk_bits)
        chunks = [self.chunk_bits] * int(full)
        if remainder > 0:
            chunks.append(remainder)
        return chunks

    def read(self, dst_chiplet: str, bits: float,
             multicast: tuple[str, ...] | None = None) -> Event:
        """Memory -> chiplet(s) transfer; multicast shares the SWMR stage.

        Built as a relay chain — HBM port -> SWMR writer stage (records
        ``mem_read``, fans out) -> per-destination reader gateways —
        then one propagation/conversion tail once every destination has
        drained.  Traffic is recorded per chunk as it is served, so the
        epoch monitor sees *sustained* load while a long message drains
        — the signal the reconfiguration controllers ramp on.
        """
        destinations = multicast if multicast else (dst_chiplet,)
        self.bits_read += bits  # shared-medium payload charged once
        done = Event(self.env)
        chunks = self._chunks(bits)
        if not chunks:
            done.succeed()
            return done
        n = len(chunks)
        pending = [len(destinations)]

        def finish(_event):
            done.succeed()

        def destination_done():
            pending[0] -= 1
            if pending[0] == 0:
                tail = self.env.timeout(self._transfer_tail_s)
                tail.callbacks = finish

        readers = [
            _ChunkRelay(
                self.chiplet_read_channels[destination], self.monitor,
                f"read:{destination}", None, n, destination_done,
            )
            for destination in destinations
        ]
        if len(readers) == 1:
            fanout = readers[0].feed
        else:
            def fanout(chunk):
                for relay in readers:
                    relay.feed(chunk)
        writer = _ChunkRelay(
            self.memory_write_channel, self.monitor, "mem_read", fanout,
            n, None,
        )
        hbm = _ChunkRelay(self.hbm_channel, None, None, writer.feed, n, None)
        for chunk in chunks:
            hbm.feed(chunk)
        return done

    def write(self, src_chiplet: str, bits: float) -> Event:
        """Chiplet -> memory transfer over the chiplet's SWSR channels."""
        self.bits_written += bits
        done = Event(self.env)
        chunks = self._chunks(bits)
        if not chunks:
            done.succeed()
            return done

        def finish(_event):
            done.succeed()

        def drained():
            tail = self.env.timeout(self._transfer_tail_s)
            tail.callbacks = finish

        hbm = _ChunkRelay(
            self.hbm_channel, None, None, None, len(chunks), drained
        )
        source = _ChunkRelay(
            self.chiplet_write_channels[src_chiplet], self.monitor,
            f"write:{src_chiplet}", hbm.feed, len(chunks), None,
        )
        for chunk in chunks:
            source.feed(chunk)
        return done

    # -- energy ------------------------------------------------------------------------

    def energy_report(self) -> NetworkEnergyReport:
        """Integrate static power signals and dynamic per-bit energies."""
        elapsed = self.env.now
        n_lambda = self.config.n_wavelengths * self._wavelength_fraction

        # Laser: proportional to active writer gateways on each side.
        laser_j = (
            self.active_memory_gateways.integral()
            * self._laser_w_per_mem_gateway
        )
        compute_writer_integral = sum(
            signal.integral() for signal in self.active_write_gateways.values()
        )
        laser_j += compute_writer_integral * self._laser_w_per_compute_gateway

        # Per-active-gateway electronics (writer: modulators + buffers;
        # reader: TIAs + buffers), per wavelength where applicable.
        writer_static_w = (
            ph.MODULATOR_STATIC_POWER_W * n_lambda
            + ph.GATEWAY_BUFFER_STATIC_POWER_W
        )
        reader_static_w = (
            ph.PD_TIA_POWER_W * n_lambda + ph.GATEWAY_BUFFER_STATIC_POWER_W
        )
        writer_integral = (
            self.active_memory_gateways.integral() + compute_writer_integral
        )
        reader_integral = sum(
            signal.integral() for signal in self.active_read_gateways.values()
        )
        # Memory-side filter rows listen to compute writers: one row per
        # active compute writer gateway.
        reader_integral += compute_writer_integral
        electronics_j = (
            writer_integral * writer_static_w
            + reader_integral * reader_static_w
        )

        # Ring trimming on active gateway rows.  MRG rows are held on the
        # DWDM grid with thermo-optic trimming (ReSiPI's PCMs gate optical
        # power; they do not replace resonance trimming), which is why the
        # photonic interposer carries a notable power overhead (Table 3).
        trim_per_row_w = (
            n_lambda
            * ph.MR_TO_TUNING_POWER_W_PER_NM
            * ph.MR_THERMAL_TRIMMING_NM
        )
        trimming_j = (writer_integral + reader_integral) * trim_per_row_w

        controller_j = ep.RESIPI_CONTROLLER_POWER_W * elapsed

        dynamic_j = (
            self.total_bits_moved * PHOTONIC_DYNAMIC_J_PER_BIT
            + (self.bits_read + self.bits_written) * ep.HBM_ENERGY_J_PER_BIT
            + self.pcmc_energy_j
        )
        static_j = (
            laser_j
            + electronics_j
            + trimming_j
            + controller_j
            + ep.HBM_STATIC_POWER_W * elapsed
            + ep.MEMORY_CHIPLET_LOGIC_STATIC_POWER_W * elapsed
        )
        return NetworkEnergyReport(
            elapsed_s=elapsed,
            static_energy_j=static_j,
            dynamic_energy_j=dynamic_j,
            breakdown_j={
                "laser": laser_j,
                "gateway_electronics": electronics_j,
                "ring_trimming": trimming_j,
                "controller": controller_j,
                "hbm_static": ep.HBM_STATIC_POWER_W * elapsed,
                "hbm_dynamic": (self.bits_read + self.bits_written)
                * ep.HBM_ENERGY_J_PER_BIT,
                "serdes_modulate_receive": self.total_bits_moved
                * PHOTONIC_DYNAMIC_J_PER_BIT,
                "pcmc_switching": self.pcmc_energy_j,
            },
        )
