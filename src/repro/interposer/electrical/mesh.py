"""Electrical mesh interposer fabric (the 2.5D-CrossLight-Elec baseline).

A 2-D mesh of routers on the interposer, one router per chiplet site,
XY (dimension-ordered) routing.  Transfers are chunked and forwarded
store-and-forward per hop; every link and every chiplet
injection/ejection port is a FIFO bandwidth resource, so hot spots around
the memory chiplet queue realistically.

Two modelling notes (see DESIGN.md, calibration):

* Interposer traces cannot be clocked pipelined at the on-chiplet NoC
  rate; the effective link bandwidth is the raw ``128 bit x 2 GHz``
  derated by ``config.mesh_link_efficiency``.
* The mesh has no broadcast: multicast reads are replicated unicasts,
  which is exactly the disadvantage the paper attributes to electrical
  interposers for DNN traffic.
"""

from __future__ import annotations

from ...config import PlatformConfig
from ...power import params as ep
from ...sim.core import Environment, Event
from ...sim.resources import BandwidthChannel, Store
from ..base import DEFAULT_CHUNK_BITS, InterposerFabric, NetworkEnergyReport
from ..topology import Floorplan


class ElectricalMeshFabric(InterposerFabric):
    """XY-routed mesh over the interposer floorplan."""

    def __init__(
        self,
        env: Environment,
        config: PlatformConfig,
        floorplan: Floorplan,
        chunk_bits: float = DEFAULT_CHUNK_BITS,
    ):
        super().__init__(env)
        self.config = config
        self.floorplan = floorplan
        self.chunk_bits = chunk_bits
        link_bw = config.mesh_effective_link_bandwidth_bps

        # Directed links between adjacent grid slots.
        self.links: dict[tuple[tuple[int, int], tuple[int, int]],
                         BandwidthChannel] = {}
        for site in floorplan.sites:
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = site.grid_x + dx, site.grid_y + dy
                if 0 <= nx < floorplan.grid_width and (
                    0 <= ny < floorplan.grid_height
                ):
                    key = ((site.grid_x, site.grid_y), (nx, ny))
                    self.links[key] = BandwidthChannel(
                        env, link_bw, name=f"link{key}"
                    )
        # Injection/ejection ports (chiplet <-> its router).
        self.ports: dict[str, BandwidthChannel] = {}
        for site in floorplan.sites:
            self.ports[f"inj:{site.chiplet_id}"] = BandwidthChannel(
                env, link_bw, name=f"inj:{site.chiplet_id}"
            )
            self.ports[f"ej:{site.chiplet_id}"] = BandwidthChannel(
                env, link_bw, name=f"ej:{site.chiplet_id}"
            )
        self.hbm_channel = BandwidthChannel(
            env, config.hbm_internal_bandwidth_bps, name="hbm"
        )
        self.hop_bits = 0.0  # bits x hops, for wire/router energy
        self.mm_bits = 0.0   # bits x mm, for wire energy

    # -- routing --------------------------------------------------------------------

    def _xy_route(self, src: str, dst: str) -> list[BandwidthChannel]:
        """Ordered channel list: inject, links along XY path, eject."""
        a = self.floorplan.site(src)
        b = self.floorplan.site(dst)
        path = [self.ports[f"inj:{src}"]]
        x, y = a.grid_x, a.grid_y
        while x != b.grid_x:
            step = 1 if b.grid_x > x else -1
            path.append(self.links[((x, y), (x + step, y))])
            x += step
        while y != b.grid_y:
            step = 1 if b.grid_y > y else -1
            path.append(self.links[((x, y), (x, y + step))])
            y += step
        path.append(self.ports[f"ej:{dst}"])
        return path

    def iter_channels(self):
        """HBM port, chiplet inj/ej ports, then the directed mesh links."""
        yield self.hbm_channel
        yield from self.ports.values()
        yield from self.links.values()

    def _per_hop_latency_s(self) -> float:
        """Router traversal + wire flight per hop."""
        return (
            self.config.mesh_router_latency_s
            + self.config.mesh_wire_latency_s_per_mm
            * self.config.chiplet_pitch_mm
        )

    def _chunks(self, bits: float) -> list[float]:
        if bits <= 0:
            return []
        full, remainder = divmod(bits, self.chunk_bits)
        chunks = [self.chunk_bits] * int(full)
        if remainder > 0:
            chunks.append(remainder)
        return chunks

    def _route_proc(self, src: str, dst: str, bits: float,
                    through_hbm_first: bool):
        """Store-and-forward pipeline of chunks along the XY route."""
        chunks = self._chunks(bits)
        if not chunks:
            return
        route = self._xy_route(src, dst)
        if through_hbm_first:
            route = [self.hbm_channel] + route
        else:
            route = route + [self.hbm_channel]
        hops = len(route) - (2 if through_hbm_first else 2)
        self.hop_bits += bits * max(1, hops)
        self.mm_bits += bits * self.floorplan.manhattan_distance_mm(src, dst)

        # Chain of stores between stages lets chunks pipeline hop-to-hop.
        stores = [Store(self.env) for _ in range(len(route) - 1)]
        done = self.env.event()

        def stage(index: int, channel: BandwidthChannel):
            source = stores[index - 1] if index > 0 else None
            sink = stores[index] if index < len(stores) else None
            def run():
                for position in range(len(chunks)):
                    if source is None:
                        chunk = chunks[position]
                    else:
                        chunk = yield source.get()
                    yield self.env.process(channel.transfer(chunk))
                    if sink is not None:
                        sink.put(chunk)
                if index == len(route) - 1:
                    done.succeed()
            return run()

        for index, channel in enumerate(route):
            self.env.process(stage(index, channel))
        yield done
        yield self.env.timeout(
            self._per_hop_latency_s()
            * max(1, self.floorplan.manhattan_hops(src, dst))
        )

    # -- fabric interface -------------------------------------------------------------

    def read(self, dst_chiplet: str, bits: float,
             multicast: tuple[str, ...] | None = None) -> Event:
        """Memory -> chiplet(s): replicated unicasts (no native broadcast)."""
        destinations = multicast if multicast else (dst_chiplet,)
        return self.env.process(self._read_all(destinations, bits))

    def _read_all(self, destinations: tuple[str, ...], bits: float):
        self.bits_read += bits * len(destinations)
        transfers = [
            self.env.process(
                self._route_proc("mem-0", destination, bits,
                                 through_hbm_first=True)
            )
            for destination in destinations
        ]
        yield self.env.all_of(transfers)

    def write(self, src_chiplet: str, bits: float) -> Event:
        self.bits_written += bits
        return self.env.process(
            self._route_proc(src_chiplet, "mem-0", bits,
                             through_hbm_first=False)
        )

    # -- energy -----------------------------------------------------------------------

    def energy_report(self) -> NetworkEnergyReport:
        elapsed = self.env.now
        n_routers = len(self.floorplan.sites)
        router_static_j = n_routers * ep.ROUTER_STATIC_POWER_W * elapsed
        router_dynamic_j = self.hop_bits * ep.ROUTER_ENERGY_J_PER_BIT
        wire_j = self.mm_bits * ep.INTERPOSER_WIRE_ENERGY_J_PER_BIT_PER_MM
        bump_j = (
            self.total_bits_moved * 2.0 * ep.MICROBUMP_ENERGY_J_PER_BIT
        )
        hbm_j = (
            self.total_bits_moved * ep.HBM_ENERGY_J_PER_BIT
            + ep.HBM_STATIC_POWER_W * elapsed
        )
        logic_j = ep.MEMORY_CHIPLET_LOGIC_STATIC_POWER_W * elapsed
        return NetworkEnergyReport(
            elapsed_s=elapsed,
            static_energy_j=router_static_j
            + ep.HBM_STATIC_POWER_W * elapsed
            + logic_j,
            dynamic_energy_j=router_dynamic_j
            + wire_j
            + bump_j
            + self.total_bits_moved * ep.HBM_ENERGY_J_PER_BIT,
            breakdown_j={
                "router_static": router_static_j,
                "router_dynamic": router_dynamic_j,
                "interposer_wires": wire_j,
                "microbumps": bump_j,
                "hbm": hbm_j,
            },
        )
