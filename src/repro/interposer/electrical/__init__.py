"""Electrical mesh interposer baseline."""

from .mesh import ElectricalMeshFabric

__all__ = ["ElectricalMeshFabric"]
