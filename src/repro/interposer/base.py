"""Abstract interposer fabric interface.

The inference engine drives any communication substrate through this
interface: unicast/multicast reads from the memory chiplet, writes back
to it, and weight fetches.  Implementations: the silicon-photonic
interposer (:mod:`repro.interposer.photonic.fabric`), the electrical mesh
(:mod:`repro.interposer.electrical.mesh`), and the monolithic on-chip
network (:mod:`repro.core.crosslight`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SimulationError
from ..sim.core import Environment, Event
from ..sim.resources import BandwidthChannel, ChannelStat
from ..sim.stats import TimeWeightedValue

DEFAULT_CHUNK_BITS = 256 * 1024
"""Transfer chunking granularity: 32 KiB chunks keep reconfiguration
responsive while bounding event counts."""


@dataclass
class NetworkEnergyReport:
    """Energy consumed by a fabric over a finished simulation."""

    elapsed_s: float
    static_energy_j: float
    dynamic_energy_j: float
    breakdown_j: dict[str, float] = field(default_factory=dict)

    @property
    def total_energy_j(self) -> float:
        return self.static_energy_j + self.dynamic_energy_j

    @property
    def average_power_w(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_energy_j / self.elapsed_s


class InterposerFabric(abc.ABC):
    """A communication substrate between memory and compute chiplets."""

    def __init__(self, env: Environment):
        self.env = env
        self.bits_read = 0.0
        self.bits_written = 0.0
        self.inflight_requests = TimeWeightedValue(env, 0.0)
        """In-flight request count over time.  The serving layer brackets
        every request execution with :meth:`request_started` /
        :meth:`request_finished`; the time average is the fabric's
        offered concurrency — the load signal utilization-under-load
        metrics are reported against."""

    # -- request-load bookkeeping (serving layer) -------------------------------

    def request_started(self) -> None:
        """Note one more request now executing over this fabric."""
        self.inflight_requests.add(1.0)

    def request_finished(self) -> None:
        """Note one request completed."""
        if self.inflight_requests.value < 1.0:
            raise SimulationError(
                "request_finished() without a matching request_started()"
            )
        self.inflight_requests.add(-1.0)

    @property
    def mean_inflight_requests(self) -> float:
        """Time-averaged concurrent request count over the fabric."""
        return self.inflight_requests.time_average()

    @abc.abstractmethod
    def read(self, dst_chiplet: str, bits: float,
             multicast: tuple[str, ...] | None = None) -> Event:
        """Move activation data memory -> chiplet(s).

        With ``multicast`` set, the same payload reaches every listed
        chiplet; fabrics with native broadcast charge the shared medium
        once, others replicate.  Returns an event firing on completion.
        """

    @abc.abstractmethod
    def write(self, src_chiplet: str, bits: float) -> Event:
        """Move result data chiplet -> memory."""

    def read_weights(self, dst_chiplet: str, bits: float) -> Event:
        """Move weights memory -> chiplet (defaults to the read path)."""
        return self.read(dst_chiplet, bits)

    @abc.abstractmethod
    def energy_report(self) -> NetworkEnergyReport:
        """Close the books: energy consumed up to ``env.now``."""

    def iter_channels(self) -> Iterable[BandwidthChannel]:
        """Every bandwidth channel of the fabric, in a stable order.

        Subclasses override; the default (no channels) keeps ad-hoc test
        fabrics working.
        """
        return ()

    def channel_stats(self) -> tuple[ChannelStat, ...]:
        """Utilization snapshot of every channel, for trace export."""
        return tuple(channel.stats() for channel in self.iter_channels())

    @property
    def total_bits_moved(self) -> float:
        """All payload bits that crossed the fabric."""
        return self.bits_read + self.bits_written
