"""Declarative, serializable scenario specs: one schema for every study.

A :class:`StudySpec` is a frozen, JSON-round-trippable description of a
complete experiment — *what* to serve or measure (:class:`WorkloadSpec`:
the traffic mix with per-model fractions, SLOs and priorities, plus the
arrival process), *where* (:class:`PlatformSpec`), *how*
(:class:`SchedulerSpec`) and *across which grid*
(:class:`SweepSpec`).  Specs validate on construction, reject unknown
JSON fields (typos never silently no-op) and hash to a stable
:func:`spec_digest` that the study compiler folds into the on-disk
cache key of every simulation cell.

The spec layer deliberately knows nothing about simulators: lowering a
spec onto the cell machinery lives in :mod:`repro.studies.compile`, and
name resolution (platforms, models, controllers, arrivals) happens
against :mod:`repro.studies.registry` at compile time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from ..errors import SpecError

SPEC_SCHEMA_VERSION = 7
"""Bump when the spec schema changes meaning: digests (and therefore
every scenario cache key) move with it.

Version 2: :class:`PlatformSpec` grew a ``faults`` section
(:class:`FaultSpec`), so every digest — and with it every scenario
cache key — moved; a pre-hazard cache can never satisfy a fault-aware
spec.

Version 3: :class:`StudySpec` grew a ``cluster`` section
(:class:`ClusterSpec`: replicas, router, per-node overrides, node-level
hazards) and :class:`FaultEventSpec` a ``node`` field, so every digest
moved again.

Version 4: :class:`StudySpec` grew a ``resilience`` section
(:class:`ResilienceSpec`: per-request timeouts, retries with backoff
and a retry budget, hedged requests, health-checked routing signals)
and :class:`FaultEventSpec` grew ``nodes`` (correlated multi-node
outage groups) and ``mac_fraction`` (compute-side MAC degradation).

Version 5: :class:`StudySpec` grew a ``fidelity`` section
(:class:`FidelitySpec`: the hybrid-fidelity engine — fluid fast path,
calibration error budget, automatic DES fallback).  The degenerate
``des`` default lowers onto the exact pre-fidelity cells: classic cell
keys do not embed the spec digest, so a legacy cache still satisfies
a degenerate spec.

Version 6: autoregressive (transformer) serving.
:class:`WorkloadSpec` grew sequence-length knobs (``prompt_tokens`` /
``output_tokens`` / ``length_distribution``), :class:`ModelTraffic`
per-tenant length overrides plus an admission ``quota``,
:class:`SchedulerSpec` a ``starvation_age_s`` guard for the priority
policy, and :class:`PlatformSpec` a sweepable ``controller_epoch_s``.
Degenerate single-step (CNN) specs still lower onto the classic cells,
whose keys do not embed the spec digest — only digest-bearing scenario
keys move.

Version 7: :class:`StudySpec` grew a ``telemetry`` section
(:class:`TelemetrySpec`: request span tracing with a configurable
sample rate, and sim-time-sampled gauge metrics).  The degenerate
default lowers onto the exact pre-telemetry cells: telemetry enters a
cell's cache key only when armed, so legacy caches still satisfy
telemetry-free specs."""

LENGTH_DISTRIBUTIONS = ("fixed", "geometric")
"""Sequence-length samplers: every request uses the configured token
counts exactly (``fixed``) or draws each from a seeded geometric
distribution with that mean (``geometric``, minimum one token)."""

STUDY_KINDS = ("inference", "serving")
"""Study kinds the compiler can lower."""


# ---------------------------------------------------------------------------
# (De)serialisation helpers shared by every spec class.
# ---------------------------------------------------------------------------


def _check_fields(cls: type, data: Mapping[str, Any], where: str) -> None:
    """Reject unknown JSON fields with a precise, typed error."""
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{where} must be a JSON object, got {type(data).__name__}"
        )
    known = {field.name for field in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"unknown field(s) {', '.join(map(repr, unknown))} in {where}; "
            f"known fields: {', '.join(sorted(known))}"
        )


def _build(cls: type, kwargs: dict[str, Any], where: str):
    """Construct a spec dataclass, translating failures to SpecError."""
    try:
        return cls(**kwargs)
    except TypeError as error:  # missing required fields
        raise SpecError(f"invalid {where}: {error}") from None


def _jsonify(value: Any) -> Any:
    """Spec values to JSON-native types (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if hasattr(value, "to_dict"):
        return value.to_dict()
    return value


def _scalars_to_dict(spec: Any) -> dict[str, Any]:
    """Field-by-field dict of a spec dataclass (recursing via to_dict)."""
    return {
        field.name: _jsonify(getattr(spec, field.name))
        for field in fields(spec)
    }


# ---------------------------------------------------------------------------
# Workload: the traffic mix and its arrival process.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelTraffic:
    """One tenant of the traffic mix.

    ``fraction`` is this model's share of arrivals, ``slo_s`` its
    latency SLO (deadline assigned at submission; ``None`` = best
    effort) and ``priority`` its rank under the ``priority`` dispatch
    policy (higher dispatches first).

    ``prompt_tokens`` / ``output_tokens`` override the workload-level
    sequence lengths for this tenant (``None`` = inherit): a transformer
    tenant serves one prefill plus ``output_tokens`` dependent decode
    steps per request, a CNN tenant keeps both at zero.  ``quota`` caps
    this tenant's outstanding (queued + running) requests — submissions
    over quota are shed at arrival and counted per model.
    """

    model: str
    fraction: float = 1.0
    slo_s: float | None = None
    priority: int = 0
    prompt_tokens: int | None = None
    output_tokens: int | None = None
    quota: int | None = None

    def __post_init__(self) -> None:
        if not self.model:
            raise SpecError("model name must be non-empty")
        if not 0.0 < self.fraction <= 1.0:
            raise SpecError(
                f"traffic fraction must be in (0, 1], got {self.fraction} "
                f"for {self.model!r}"
            )
        if self.slo_s is not None and self.slo_s <= 0:
            raise SpecError(
                f"SLO must be positive, got {self.slo_s} for {self.model!r}"
            )
        for name in ("prompt_tokens", "output_tokens"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise SpecError(
                    f"{name} must be >= 0, got {value} for {self.model!r}"
                )
        if self.quota is not None and self.quota < 1:
            raise SpecError(
                f"admission quota must be >= 1, got {self.quota} for "
                f"{self.model!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelTraffic":
        _check_fields(cls, data, "workload model entry")
        return _build(cls, dict(data), "workload model entry")


@dataclass(frozen=True)
class WorkloadSpec:
    """What traffic the study offers: mix, rate, arrivals, window.

    ``burstiness``/``dwell_s`` parameterise the ``mmpp`` arrival
    process, ``think_time_s`` the ``closed`` loop; they are ignored by
    the others.  ``batch_size`` applies to ``inference``-kind studies
    (one isolated batched inference instead of a serving window).

    ``prompt_tokens`` / ``output_tokens`` are the workload-level
    sequence lengths (zero = single-step requests; per-tenant overrides
    in :class:`ModelTraffic`); ``length_distribution`` selects how each
    request's lengths are drawn from those means
    (:data:`LENGTH_DISTRIBUTIONS`, seeded by ``seed``).
    """

    models: tuple[ModelTraffic, ...]
    arrival: str = "poisson"
    rate_rps: float = 100e3
    duration_s: float = 2e-3
    seed: int = 7
    burstiness: float = 4.0
    dwell_s: float = 20e-6
    think_time_s: float = 10e-6
    batch_size: int = 1
    prompt_tokens: int = 0
    output_tokens: int = 0
    length_distribution: str = "fixed"

    def __post_init__(self) -> None:
        if not self.models:
            raise SpecError("workload needs at least one model")
        names = [entry.model for entry in self.models]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate models in workload: {names}")
        if self.rate_rps <= 0:
            raise SpecError(
                f"arrival rate must be positive, got {self.rate_rps}"
            )
        if self.duration_s <= 0:
            raise SpecError(
                f"duration must be positive, got {self.duration_s}"
            )
        if self.burstiness < 1.0:
            raise SpecError(
                f"burstiness must be >= 1, got {self.burstiness}"
            )
        if self.dwell_s <= 0:
            raise SpecError(f"dwell time must be positive, got {self.dwell_s}")
        if self.think_time_s < 0:
            raise SpecError(
                f"think time must be non-negative, got {self.think_time_s}"
            )
        if self.batch_size < 1:
            raise SpecError(
                f"batch size must be >= 1, got {self.batch_size}"
            )
        if self.prompt_tokens < 0 or self.output_tokens < 0:
            raise SpecError(
                f"sequence lengths must be >= 0, got prompt_tokens="
                f"{self.prompt_tokens}, output_tokens={self.output_tokens}"
            )
        if self.length_distribution not in LENGTH_DISTRIBUTIONS:
            raise SpecError(
                f"unknown length distribution "
                f"{self.length_distribution!r}; choose from "
                f"{', '.join(LENGTH_DISTRIBUTIONS)}"
            )
        for entry in self.models:
            prompt, output = self.resolved_lengths(entry)
            if (prompt > 0) != (output > 0):
                raise SpecError(
                    f"{entry.model!r} resolves to prompt_tokens={prompt}, "
                    f"output_tokens={output}; a sequence tenant needs "
                    "both positive (a single-step tenant, both zero)"
                )
        # Inert-knob rejection: a sampler with no sequence tenant would
        # sit in the digest without acting.
        if (
            self.length_distribution
            != type(self).__dataclass_fields__["length_distribution"].default
            and not self.has_sequences
        ):
            raise SpecError(
                "length_distribution applies only to sequence "
                "(autoregressive) workloads; set prompt_tokens/"
                "output_tokens or drop it"
            )

    def resolved_lengths(self, entry: ModelTraffic) -> tuple[int, int]:
        """One tenant's effective (prompt, output) token counts."""
        prompt = (
            self.prompt_tokens if entry.prompt_tokens is None
            else entry.prompt_tokens
        )
        output = (
            self.output_tokens if entry.output_tokens is None
            else entry.output_tokens
        )
        return prompt, output

    @property
    def has_sequences(self) -> bool:
        """Whether any tenant serves autoregressive sequences."""
        return any(
            self.resolved_lengths(entry)[1] > 0 for entry in self.models
        )

    @property
    def has_quotas(self) -> bool:
        """Whether any tenant caps its outstanding requests."""
        return any(entry.quota is not None for entry in self.models)

    @property
    def fraction_total(self) -> float:
        return sum(entry.fraction for entry in self.models)

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _check_fields(cls, data, "workload spec")
        kwargs = dict(data)
        models = kwargs.pop("models", None)
        if not isinstance(models, (list, tuple)) or not models:
            raise SpecError("workload spec needs a non-empty 'models' list")
        kwargs["models"] = tuple(
            ModelTraffic.from_dict(entry) for entry in models
        )
        return _build(cls, kwargs, "workload spec")


# ---------------------------------------------------------------------------
# Faults: the hazard timeline a platform runs under.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEventSpec:
    """One hazard event of the platform's fault timeline.

    ``kind`` resolves against the ``HAZARDS`` registry at compile time
    (``gateway-fail``, ``gateway-repair``, ``ring-drift``,
    ``laser-degradation`` on the fabric; ``node-fail``, ``node-drain``,
    ``node-repair`` on cluster nodes); the remaining fields are the
    union of every kind's knobs — the per-kind factories reject knobs
    that do not apply, so an inert field never silently moves a digest.
    ``chiplet_gateways`` lists ``[chiplet_id, write, read]`` failure
    (or repair) counts; ``node`` is the cluster node index the
    node-level kinds address, and ``nodes`` the node group the
    correlated kinds (``rack-fail`` / ``rack-repair``) take down or
    restore together.  ``mac_fraction`` is the remaining MAC throughput
    of a ``chiplet-mac-degrade`` event.
    """

    kind: str
    at_s: float
    duration_s: float | None = None
    memory_gateways: int = 0
    chiplet_gateways: tuple[tuple[str, int, int], ...] = ()
    temperature_rise_k: float = 0.0
    power_fraction: float = 1.0
    seed: int = 0
    node: int | None = None
    nodes: tuple[int, ...] = ()
    mac_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.kind:
            raise SpecError("fault event needs a kind")
        if self.at_s < 0:
            raise SpecError(
                f"fault event time must be >= 0, got {self.at_s}"
            )
        if self.node is not None and self.node < 0:
            raise SpecError(
                f"fault event node index must be >= 0, got {self.node}"
            )
        if any(index < 0 for index in self.nodes):
            raise SpecError(
                f"fault event node indices must be >= 0, got "
                f"{list(self.nodes)}"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise SpecError(
                f"duplicate indices in fault event 'nodes': "
                f"{list(self.nodes)}"
            )
        if self.node is not None and self.nodes:
            raise SpecError(
                "a fault event takes either 'node' (single-node kinds) "
                "or 'nodes' (correlated rack kinds), not both"
            )
        if not 0.0 < self.mac_fraction <= 1.0:
            raise SpecError(
                f"MAC fraction must be in (0, 1], got {self.mac_fraction}"
            )
        if self.duration_s is not None and self.duration_s <= 0:
            raise SpecError(
                f"fault event duration must be positive, got "
                f"{self.duration_s}"
            )
        if self.memory_gateways < 0:
            raise SpecError(
                f"memory gateway count must be >= 0, got "
                f"{self.memory_gateways}"
            )
        for entry in self.chiplet_gateways:
            if len(entry) != 3:
                raise SpecError(
                    "chiplet_gateways entries are "
                    "[chiplet_id, write, read] triples, got "
                    f"{list(entry)!r}"
                )
        if not 0.0 < self.power_fraction <= 1.0:
            raise SpecError(
                f"power fraction must be in (0, 1], got "
                f"{self.power_fraction}"
            )
        if self.temperature_rise_k < 0:
            raise SpecError(
                f"temperature rise must be >= 0, got "
                f"{self.temperature_rise_k}"
            )

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEventSpec":
        _check_fields(cls, data, "fault event")
        kwargs = dict(data)
        entries = kwargs.get("chiplet_gateways", ())
        if not isinstance(entries, (list, tuple)):
            raise SpecError("fault event 'chiplet_gateways' must be a list")
        kwargs["chiplet_gateways"] = tuple(
            tuple(entry) if isinstance(entry, (list, tuple)) else (entry,)
            for entry in entries
        )
        nodes = kwargs.get("nodes", ())
        if not isinstance(nodes, (list, tuple)):
            raise SpecError("fault event 'nodes' must be a list")
        kwargs["nodes"] = tuple(nodes)
        return _build(cls, kwargs, "fault event")


@dataclass(frozen=True)
class FaultSpec:
    """The platform's hazard timeline: zero or more chronological events.

    The empty timeline (the default) is the fault-free platform; a
    timeline whose every event fires at ``t=0`` is the static fault
    plan of the one-shot studies.
    """

    events: tuple[FaultEventSpec, ...] = ()

    def __post_init__(self) -> None:
        previous = 0.0
        for event in self.events:
            if event.at_s < previous:
                raise SpecError(
                    "fault events must be listed chronologically: "
                    f"{event.kind!r} at t={event.at_s}s follows "
                    f"t={previous}s"
                )
            previous = event.at_s

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        _check_fields(cls, data, "fault spec")
        events = data.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise SpecError("fault spec 'events' must be a list")
        return cls(events=tuple(
            FaultEventSpec.from_dict(event) for event in events
        ))


# ---------------------------------------------------------------------------
# Platform and scheduler.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlatformSpec:
    """Which platform serves the workload, and its config knobs.

    ``name``/``controller`` resolve against the platform and controller
    registries at compile time.  ``n_wavelengths`` and
    ``gateways_per_chiplet`` override the Table 1 defaults (the two
    design-space axes the paper's conclusions call out).
    ``controller_epoch_s`` overrides the epoch length the reconfiguring
    controllers (ReSiPI / PROWAVES) wake on — a sweepable axis; the
    compiler rejects it on controllers that never act on the epoch.
    ``faults`` is the hazard timeline the platform runs under (photonic
    platform only; empty = fault-free).
    """

    name: str = "2.5D-CrossLight-SiPh"
    controller: str = "resipi"
    n_wavelengths: int | None = None
    gateways_per_chiplet: int | None = None
    controller_epoch_s: float | None = None
    faults: FaultSpec = FaultSpec()

    def __post_init__(self) -> None:
        if self.n_wavelengths is not None and self.n_wavelengths < 1:
            raise SpecError(
                f"wavelength count must be >= 1, got {self.n_wavelengths}"
            )
        if self.controller_epoch_s is not None and self.controller_epoch_s <= 0:
            raise SpecError(
                f"controller epoch must be positive, got "
                f"{self.controller_epoch_s}"
            )
        if (
            self.gateways_per_chiplet is not None
            and self.gateways_per_chiplet < 1
        ):
            raise SpecError(
                f"gateway count must be >= 1, got "
                f"{self.gateways_per_chiplet}"
            )

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        _check_fields(cls, data, "platform spec")
        kwargs = dict(data)
        if "faults" in kwargs:
            kwargs["faults"] = FaultSpec.from_dict(kwargs["faults"])
        return _build(cls, kwargs, "platform spec")


@dataclass(frozen=True)
class SchedulerSpec:
    """How requests dispatch: policy, batching, admission, shedding.

    Mirrors :class:`~repro.serving.scheduler.BatchPolicy`
    field-for-field; the compiler builds the policy through the batch
    policy registry so the name resolves with a typed error.

    ``starvation_age_s`` arms the priority policy's starvation guard:
    a queued request older than this is promoted ahead of higher
    priorities (priority policy only — the guard would be inert
    elsewhere).
    """

    policy: str = "fifo"
    max_batch: int = 1
    batch_timeout_s: float = 20e-6
    max_inflight: int = 4
    shed_expired: bool = False
    starvation_age_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise SpecError(f"max batch must be >= 1, got {self.max_batch}")
        if self.batch_timeout_s < 0:
            raise SpecError(
                f"batch timeout must be non-negative, got "
                f"{self.batch_timeout_s}"
            )
        if self.max_inflight < 1:
            raise SpecError(
                f"max inflight must be >= 1, got {self.max_inflight}"
            )
        # Batching knobs on a single-dispatch policy would be inert at
        # runtime but present in cache keys: reject instead of no-oping.
        if self.policy not in ("max-batch", "continuous"):
            if self.max_batch != 1:
                raise SpecError(
                    f"max_batch applies only to the max-batch and "
                    f"continuous policies (got {self.max_batch} with "
                    f"{self.policy!r})"
                )
        if self.policy != "max-batch":
            default_timeout = type(self).__dataclass_fields__[
                "batch_timeout_s"
            ].default
            if self.batch_timeout_s != default_timeout:
                raise SpecError(
                    f"batch_timeout_s applies only to the max-batch "
                    f"policy (got {self.batch_timeout_s} with "
                    f"{self.policy!r}; the continuous policy joins at "
                    "decode-step boundaries, not timers)"
                )
        if self.starvation_age_s is not None:
            if self.policy != "priority":
                raise SpecError(
                    f"starvation_age_s applies only to the priority "
                    f"policy (got it with {self.policy!r})"
                )
            if self.starvation_age_s <= 0:
                raise SpecError(
                    f"starvation age must be positive, got "
                    f"{self.starvation_age_s}"
                )

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerSpec":
        _check_fields(cls, data, "scheduler spec")
        return _build(cls, dict(data), "scheduler spec")


# ---------------------------------------------------------------------------
# Cluster: a fleet of platform replicas behind a router.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeOverrideSpec:
    """Heterogeneous fleet: config overrides for one node.

    ``node`` is the replica index; the remaining fields override the
    study-level platform knobs for that node only (``None`` = inherit).
    """

    node: int
    controller: str | None = None
    n_wavelengths: int | None = None
    gateways_per_chiplet: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise SpecError(
                f"node override index must be >= 0, got {self.node}"
            )
        if self.n_wavelengths is not None and self.n_wavelengths < 1:
            raise SpecError(
                f"wavelength count must be >= 1, got {self.n_wavelengths}"
            )
        if (
            self.gateways_per_chiplet is not None
            and self.gateways_per_chiplet < 1
        ):
            raise SpecError(
                f"gateway count must be >= 1, got "
                f"{self.gateways_per_chiplet}"
            )

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeOverrideSpec":
        _check_fields(cls, data, "node override")
        return _build(cls, dict(data), "node override")


@dataclass(frozen=True)
class ClusterSpec:
    """How many platform replicas serve the workload, and behind what.

    ``router`` resolves against the ``ROUTERS`` registry at compile
    time; ``weights`` parameterises the ``weighted`` router (one
    positive weight per node).  ``nodes`` optionally overrides platform
    knobs per replica (heterogeneous fleets); ``faults`` is the
    node-level hazard timeline (``node-fail`` / ``node-drain`` /
    ``node-repair``), and ``reroute_on_fail`` controls whether a failed
    node's queued requests are re-enqueued on survivors or left to
    drain in place.
    """

    replicas: int = 1
    router: str = "round-robin"
    weights: tuple[float, ...] = ()
    reroute_on_fail: bool = True
    nodes: tuple[NodeOverrideSpec, ...] = ()
    faults: FaultSpec = FaultSpec()

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise SpecError(
                f"replica count must be >= 1, got {self.replicas}"
            )
        if not self.router:
            raise SpecError("cluster needs a router name")
        if self.weights and len(self.weights) != self.replicas:
            raise SpecError(
                f"cluster.weights needs one weight per replica: got "
                f"{len(self.weights)} weight(s) for {self.replicas} "
                f"replica(s)"
            )
        if any(weight <= 0 for weight in self.weights):
            raise SpecError(
                f"node weights must be positive, got {list(self.weights)}"
            )
        indices = [override.node for override in self.nodes]
        if len(set(indices)) != len(indices):
            raise SpecError(f"duplicate node overrides: {indices}")
        for override in self.nodes:
            if override.node >= self.replicas:
                raise SpecError(
                    f"node override for node {override.node} but the "
                    f"cluster has {self.replicas} replica(s)"
                )
        for event in self.faults.events:
            if event.node is None and not event.nodes:
                raise SpecError(
                    f"cluster fault event {event.kind!r} at "
                    f"t={event.at_s}s needs a 'node' index (or a "
                    f"'nodes' group for the correlated rack kinds)"
                )
            targets = (event.node,) if event.node is not None else event.nodes
            for index in targets:
                if index >= self.replicas:
                    raise SpecError(
                        f"cluster fault event {event.kind!r} names node "
                        f"{index} but the cluster has {self.replicas} "
                        f"replica(s)"
                    )

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        _check_fields(cls, data, "cluster spec")
        kwargs = dict(data)
        weights = kwargs.get("weights", ())
        if not isinstance(weights, (list, tuple)):
            raise SpecError("cluster 'weights' must be a list")
        kwargs["weights"] = tuple(weights)
        nodes = kwargs.get("nodes", ())
        if not isinstance(nodes, (list, tuple)):
            raise SpecError("cluster 'nodes' must be a list")
        kwargs["nodes"] = tuple(
            NodeOverrideSpec.from_dict(entry) for entry in nodes
        )
        if "faults" in kwargs:
            kwargs["faults"] = FaultSpec.from_dict(kwargs["faults"])
        return _build(cls, kwargs, "cluster spec")


# ---------------------------------------------------------------------------
# Resilience: the request lifecycle and the router's signal path.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResilienceSpec:
    """How requests survive faults, and what the router actually sees.

    The default instance is the **degenerate** resilience spec: no
    timeouts, no retries, no hedging, and an omniscient zero-staleness
    router — the study lowers onto the exact pre-resilience cells (and
    cache keys).  Any non-default knob routes the study through the
    request-lifecycle layer (:mod:`repro.serving.lifecycle`).

    ``timeout_s`` bounds each *attempt*; a timed-out attempt is
    cancelled (if still queued) and retried up to ``max_retries`` times
    with exponential backoff ``retry_backoff_s * 2**(n-1)`` plus a
    deterministic seeded jitter of up to ``retry_jitter`` of the
    backoff.  ``retry_budget`` caps total retries fleet-wide as a
    fraction of logical requests started (a classic retry budget, so
    retry storms cannot amplify an outage).  ``hedge_delay_s`` arms a
    hedge timer per request: when the primary attempt is still pending
    after the delay, a duplicate is sent to a *different* node and the
    first completion wins (the loser is cancelled).

    ``signal_staleness_s`` makes the router's queue-depth signals
    sampled instead of instantaneous, and ``probe_interval_s`` /
    ``probe_misses`` switch failure detection from omniscient to
    probe-based: ``probe_misses`` consecutive missed probes eject a
    node from the routable view, and the first successful probe after
    repair reinstates it.
    """

    timeout_s: float | None = None
    max_retries: int = 0
    retry_backoff_s: float = 50e-6
    retry_jitter: float = 0.0
    retry_budget: float | None = None
    hedge_delay_s: float | None = None
    signal_staleness_s: float = 0.0
    probe_interval_s: float | None = None
    probe_misses: int = 3

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SpecError(
                f"request timeout must be positive, got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise SpecError(
                f"max retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise SpecError(
                f"retry backoff must be non-negative, got "
                f"{self.retry_backoff_s}"
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise SpecError(
                f"retry jitter must be in [0, 1] (a fraction of the "
                f"backoff), got {self.retry_jitter}"
            )
        if self.retry_budget is not None and self.retry_budget <= 0:
            raise SpecError(
                f"retry budget must be positive (a fraction of logical "
                f"requests), got {self.retry_budget}; omit it for "
                f"unlimited retries"
            )
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise SpecError(
                f"hedge delay must be positive, got {self.hedge_delay_s}"
            )
        if self.signal_staleness_s < 0:
            raise SpecError(
                f"signal staleness must be non-negative, got "
                f"{self.signal_staleness_s}"
            )
        if self.probe_interval_s is not None and self.probe_interval_s <= 0:
            raise SpecError(
                f"probe interval must be positive, got "
                f"{self.probe_interval_s}"
            )
        if self.probe_misses < 1:
            raise SpecError(
                f"probe miss threshold must be >= 1, got "
                f"{self.probe_misses}"
            )
        # Inert-knob rejection: a knob that cannot act would still move
        # the digest (and the cache key), so refuse it outright.
        defaults = type(self).__dataclass_fields__
        if self.max_retries == 0:
            if self.retry_backoff_s != defaults["retry_backoff_s"].default:
                raise SpecError(
                    "retry_backoff_s applies only with max_retries >= 1"
                )
            if self.retry_jitter != 0.0:
                raise SpecError(
                    "retry_jitter applies only with max_retries >= 1"
                )
            if self.retry_budget is not None:
                raise SpecError(
                    "retry_budget applies only with max_retries >= 1"
                )
        if (
            self.probe_interval_s is None
            and self.probe_misses != defaults["probe_misses"].default
        ):
            raise SpecError(
                "probe_misses applies only with probe_interval_s set"
            )

    def __bool__(self) -> bool:
        """True when any knob departs from the degenerate default."""
        return self != type(self)()

    @property
    def health_checked(self) -> bool:
        """Whether the router's view is modeled (stale and/or probed)."""
        return self.signal_staleness_s > 0 or self.probe_interval_s is not None

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResilienceSpec":
        _check_fields(cls, data, "resilience spec")
        return _build(cls, dict(data), "resilience spec")


# ---------------------------------------------------------------------------
# Fidelity: how faithfully each cell is simulated.
# ---------------------------------------------------------------------------


FIDELITY_MODES = ("des", "fluid", "auto")
"""Fidelity modes: full DES (default), fluid fast path, or fluid with
automatic fallback to DES when the calibration error exceeds budget."""


@dataclass(frozen=True)
class FidelitySpec:
    """How faithfully each serving cell is simulated.

    The default instance is the **degenerate** fidelity spec: every
    cell runs the full discrete-event simulation, and the study lowers
    onto the exact pre-fidelity cells (and cache keys).

    ``mode`` selects the engine per cell: ``"fluid"`` runs the M/G/k
    fluid approximation calibrated against a short DES window of the
    same point; ``"auto"`` does the same but falls back to full DES
    when the calibration's relative error on p50/p99/goodput exceeds
    ``error_budget``.  Either way the measured errors are recorded in
    the result's ``fidelity`` block — fidelity loss is bounded and
    reported, never assumed.

    ``calibration_s`` is the length of the short DES calibration
    window; ``None`` picks ``max(duration/10, 30 mean inter-arrival
    gaps)`` capped at the full duration.  The calibration checkpoint is
    memoised per (platform, workload) — sweeps fork scenario variants
    from the warm state instead of replaying it per cell.
    """

    mode: str = "des"
    error_budget: float = 0.15
    calibration_s: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in FIDELITY_MODES:
            raise SpecError(
                f"unknown fidelity mode {self.mode!r}; "
                f"choose from {', '.join(FIDELITY_MODES)}"
            )
        if not 0.0 < self.error_budget <= 1.0:
            raise SpecError(
                f"fidelity error budget must be in (0, 1], got "
                f"{self.error_budget}"
            )
        if self.calibration_s is not None and self.calibration_s <= 0:
            raise SpecError(
                f"calibration window must be positive, got "
                f"{self.calibration_s}"
            )
        # Inert-knob rejection: calibration knobs on the DES mode would
        # sit in the digest without acting, so refuse them outright.
        if self.mode == "des":
            default_budget = type(self).__dataclass_fields__[
                "error_budget"
            ].default
            if self.error_budget != default_budget:
                raise SpecError(
                    "fidelity.error_budget applies only to the fluid/"
                    "auto modes"
                )
            if self.calibration_s is not None:
                raise SpecError(
                    "fidelity.calibration_s applies only to the fluid/"
                    "auto modes"
                )

    def __bool__(self) -> bool:
        """True when any knob departs from the degenerate default."""
        return self != type(self)()

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FidelitySpec":
        _check_fields(cls, data, "fidelity spec")
        return _build(cls, dict(data), "fidelity spec")


# ---------------------------------------------------------------------------
# Telemetry: what to observe while each cell simulates.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetrySpec:
    """What the simulation observes about itself while it runs.

    The default instance is the **degenerate** telemetry spec: nothing
    is recorded, and the study lowers onto the exact pre-telemetry
    cells (and cache keys).

    ``trace`` arms request span tracing: the lifecycle of each sampled
    request — queue wait, batch gather, KV/weight admission and fetch,
    prefill and decode steps, retry/hedge attempts, routing — is
    recorded as sim-time spans, exportable as Chrome trace-event JSON
    (``repro study SPEC --trace out.json``) loadable in Perfetto.
    ``sample_rate`` is the traced fraction of requests (deterministic
    per request id, so serial and ``--jobs N`` runs sample
    identically); it applies only when ``trace`` is on.

    Metrics gauges (queue depth, inflight, decode-pool width, KV and
    weight residency occupancy, MAC/channel utilization, routable
    nodes) are sampled whenever the section is armed;
    ``metrics_interval_s`` overrides the sim-time sampling interval
    (default: duration / 50).  Telemetry never changes what the
    simulation does: request records are bit-identical with the
    section armed or absent.
    """

    trace: bool = False
    sample_rate: float = 1.0
    metrics_interval_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.sample_rate <= 1.0:
            raise SpecError(
                f"telemetry sample rate must be in (0, 1], got "
                f"{self.sample_rate}"
            )
        if (
            self.metrics_interval_s is not None
            and self.metrics_interval_s <= 0
        ):
            raise SpecError(
                f"telemetry metrics interval must be positive, got "
                f"{self.metrics_interval_s}"
            )
        # Inert-knob rejection: a sample rate without tracing would sit
        # in the digest without acting.
        if self.sample_rate != 1.0 and not self.trace:
            raise SpecError(
                "telemetry.sample_rate applies only when telemetry.trace "
                "is on"
            )

    def __bool__(self) -> bool:
        """True when any knob departs from the degenerate default."""
        return self != type(self)()

    def to_dict(self) -> dict[str, Any]:
        return _scalars_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySpec":
        _check_fields(cls, data, "telemetry spec")
        return _build(cls, dict(data), "telemetry spec")


# ---------------------------------------------------------------------------
# Sweep grid.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepAxis:
    """One grid axis: a dotted spec field path and its values.

    ``field`` addresses a scalar field of the spec tree —
    ``"workload.rate_rps"``, ``"platform.controller"``,
    ``"scheduler.policy"``, ``"platform.n_wavelengths"``, ... — and the
    cross-product of all axes (first axis outermost) defines the grid.
    """

    field: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.field:
            raise SpecError("sweep axis needs a field path")
        if not self.values:
            raise SpecError(
                f"sweep axis {self.field!r} needs at least one value"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"field": self.field, "values": _jsonify(self.values)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        _check_fields(cls, data, "sweep axis")
        kwargs = dict(data)
        values = kwargs.pop("values", ())
        if not isinstance(values, (list, tuple)):
            raise SpecError("sweep axis 'values' must be a list")
        kwargs["values"] = tuple(values)
        return _build(cls, kwargs, "sweep axis")


@dataclass(frozen=True)
class SweepSpec:
    """The study's grid: zero or more axes, crossed in order."""

    axes: tuple[SweepAxis, ...] = ()

    def __post_init__(self) -> None:
        paths = [axis.field for axis in self.axes]
        if len(set(paths)) != len(paths):
            raise SpecError(f"duplicate sweep axes: {paths}")

    @property
    def n_points(self) -> int:
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def to_dict(self) -> dict[str, Any]:
        return {"axes": [axis.to_dict() for axis in self.axes]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        _check_fields(cls, data, "sweep spec")
        axes = data.get("axes", [])
        if not isinstance(axes, (list, tuple)):
            raise SpecError("sweep spec 'axes' must be a list")
        return cls(axes=tuple(SweepAxis.from_dict(axis) for axis in axes))


# ---------------------------------------------------------------------------
# The top-level study.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StudySpec:
    """A complete declarative study: the unit `run_study` executes.

    ``kind`` selects the lowering: ``"serving"`` simulates a full
    request-serving window per grid point; ``"inference"`` runs one
    isolated (batched) inference per model per grid point.
    ``residency_capacity_bits`` bounds the (per-node) weight store of
    serving runs (LRU eviction between tenants).  ``cluster`` scales a
    serving study out to a routed fleet of platform replicas
    (``None`` = the classic single-node path).  ``resilience`` adds the
    request lifecycle (timeouts / retries / hedging) and the modeled
    router signal path; its default instance is degenerate and lowers
    to the classic cells.  ``fidelity`` selects the simulation engine
    per cell (full DES, fluid fast path, or fluid with auto-fallback
    when the calibration error exceeds budget); its default instance
    is likewise degenerate.  ``telemetry`` arms span tracing and
    sampled gauge metrics over each serving cell (degenerate by
    default: nothing recorded, classic cells and cache keys).
    """

    name: str
    workload: WorkloadSpec
    kind: str = "serving"
    platform: PlatformSpec = PlatformSpec()
    scheduler: SchedulerSpec = SchedulerSpec()
    sweep: SweepSpec = SweepSpec()
    residency_capacity_bits: float | None = None
    cluster: ClusterSpec | None = None
    resilience: ResilienceSpec = ResilienceSpec()
    fidelity: FidelitySpec = FidelitySpec()
    telemetry: TelemetrySpec = TelemetrySpec()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("study needs a name")
        if self.kind not in STUDY_KINDS:
            raise SpecError(
                f"unknown study kind {self.kind!r}; "
                f"choose from {', '.join(STUDY_KINDS)}"
            )
        if self.kind == "serving":
            total = self.workload.fraction_total
            if abs(total - 1.0) > 1e-9:
                raise SpecError(
                    f"serving traffic fractions must sum to 1, got {total}"
                )
            if self.workload.batch_size != 1:
                raise SpecError(
                    "workload.batch_size applies to inference studies; "
                    "serving batches via scheduler.max_batch"
                )
        else:
            self._reject_serving_only_fields()
            if self.cluster is not None:
                raise SpecError(
                    "the cluster section applies only to serving studies"
                )
            if self.resilience:
                raise SpecError(
                    "the resilience section applies only to serving studies"
                )
        replicas = 0 if self.cluster is None else self.cluster.replicas
        if self.resilience.hedge_delay_s is not None and replicas < 2:
            raise SpecError(
                "resilience.hedge_delay_s duplicates a request to a "
                "second node; it needs a cluster section with "
                "replicas >= 2"
            )
        if self.resilience.health_checked and replicas < 2:
            raise SpecError(
                "resilience signal staleness / probing models the "
                "router's view of the fleet; it needs a cluster "
                "section with replicas >= 2"
            )
        if self.fidelity:
            if self.kind != "serving":
                raise SpecError(
                    "the fidelity section applies only to serving studies"
                )
            if self.workload.arrival == "closed":
                raise SpecError(
                    "the fluid fidelity path models open-loop arrivals; "
                    "closed-loop workloads run full DES (fidelity: des)"
                )
            if self.resilience:
                raise SpecError(
                    "the fluid fidelity path does not model the "
                    "resilience lifecycle; drop the resilience section "
                    "or run full DES (fidelity: des)"
                )
            if self.scheduler.shed_expired:
                raise SpecError(
                    "the fluid fidelity path does not model load "
                    "shedding; disable scheduler.shed_expired or run "
                    "full DES (fidelity: des)"
                )
        if self.telemetry:
            if self.kind != "serving":
                raise SpecError(
                    "the telemetry section applies only to serving studies"
                )
            if self.fidelity:
                raise SpecError(
                    "the fluid fidelity path does not simulate the "
                    "per-request lifecycle telemetry observes; drop the "
                    "telemetry section or run full DES (fidelity: des)"
                )
        if self.kind == "serving" and self.workload.has_sequences:
            if self.resilience:
                raise SpecError(
                    "the resilience lifecycle does not retry or hedge "
                    "autoregressive sequences; drop the resilience "
                    "section or the sequence lengths"
                )
            if self.cluster is not None:
                raise SpecError(
                    "the cluster layer does not route autoregressive "
                    "sequences (KV-cache state pins a sequence to one "
                    "node); drop the cluster section or the sequence "
                    "lengths"
                )
        if (
            self.kind == "serving"
            and self.scheduler.policy == "continuous"
            and not self.workload.has_sequences
        ):
            raise SpecError(
                "the continuous policy batches decode steps; it needs "
                "an autoregressive workload (set prompt_tokens/"
                "output_tokens)"
            )
        if (
            self.residency_capacity_bits is not None
            and self.residency_capacity_bits <= 0
        ):
            raise SpecError(
                f"residency capacity must be positive, got "
                f"{self.residency_capacity_bits}"
            )

    def _reject_serving_only_fields(self) -> None:
        """Inference studies: serving-only fields must stay at their
        defaults — accepting them would silently no-op."""
        if self.scheduler != SchedulerSpec():
            raise SpecError(
                "the scheduler section applies only to serving studies"
            )
        if self.residency_capacity_bits is not None:
            raise SpecError(
                "residency_capacity_bits applies only to serving studies"
            )
        defaults = WorkloadSpec.__dataclass_fields__
        for name in ("arrival", "rate_rps", "duration_s", "burstiness",
                     "dwell_s", "think_time_s", "prompt_tokens",
                     "output_tokens", "length_distribution"):
            if getattr(self.workload, name) != defaults[name].default:
                raise SpecError(
                    f"workload.{name} applies only to serving studies"
                )
        for entry in self.workload.models:
            if entry.slo_s is not None or entry.priority != 0:
                raise SpecError(
                    f"SLO/priority on {entry.model!r} apply only to "
                    "serving studies"
                )
            if (
                entry.prompt_tokens is not None
                or entry.output_tokens is not None
                or entry.quota is not None
            ):
                raise SpecError(
                    f"sequence lengths / quota on {entry.model!r} apply "
                    "only to serving studies"
                )

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        record = {"schema": SPEC_SCHEMA_VERSION}
        record.update(_scalars_to_dict(self))
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"study spec must be a JSON object, got {type(data).__name__}"
            )
        kwargs = dict(data)
        schema = kwargs.pop("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise SpecError(
                f"spec schema {schema!r} is not supported "
                f"(this build reads schema {SPEC_SCHEMA_VERSION})"
            )
        _check_fields(cls, kwargs, "study spec")
        if "workload" not in kwargs:
            raise SpecError("study spec needs a 'workload' section")
        kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        if "platform" in kwargs:
            kwargs["platform"] = PlatformSpec.from_dict(kwargs["platform"])
        if "scheduler" in kwargs:
            kwargs["scheduler"] = SchedulerSpec.from_dict(kwargs["scheduler"])
        if "sweep" in kwargs:
            kwargs["sweep"] = SweepSpec.from_dict(kwargs["sweep"])
        if kwargs.get("cluster") is not None:
            kwargs["cluster"] = ClusterSpec.from_dict(kwargs["cluster"])
        if "resilience" in kwargs:
            kwargs["resilience"] = ResilienceSpec.from_dict(
                kwargs["resilience"]
            )
        if "fidelity" in kwargs:
            kwargs["fidelity"] = FidelitySpec.from_dict(kwargs["fidelity"])
        if "telemetry" in kwargs:
            kwargs["telemetry"] = TelemetrySpec.from_dict(
                kwargs["telemetry"]
            )
        return _build(cls, kwargs, "study spec")

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"spec is not valid JSON: {error}") from None
        return cls.from_dict(data)

    # -- overrides and expansion ---------------------------------------------------

    _SECTIONS = {"workload", "platform", "scheduler", "cluster",
                 "resilience", "fidelity", "telemetry"}

    def with_override(self, path: str, value: Any) -> "StudySpec":
        """A copy with one scalar field replaced (sweep-axis setter).

        ``path`` is ``"section.field"`` for the workload / platform /
        scheduler / cluster / resilience sections or a bare top-level
        scalar such as ``"residency_capacity_bits"``.  Validation
        re-runs on the copy.
        """
        section_name, dot, field_name = path.partition(".")
        if not dot:
            if section_name not in ("residency_capacity_bits",):
                raise SpecError(
                    f"cannot sweep top-level field {path!r}; sweepable "
                    "sections: workload, platform, scheduler, cluster, "
                    "resilience, fidelity, telemetry"
                )
            return replace(self, **{section_name: value})
        if section_name not in self._SECTIONS:
            raise SpecError(
                f"unknown spec section {section_name!r} in sweep path "
                f"{path!r}; choose from {', '.join(sorted(self._SECTIONS))}"
            )
        section = getattr(self, section_name)
        if section is None:
            raise SpecError(
                f"cannot sweep {path!r}: the spec has no "
                f"{section_name} section (add one with its defaults)"
            )
        known = {field.name for field in fields(section)}
        if field_name not in known:
            raise SpecError(
                f"unknown field {field_name!r} in sweep path {path!r}; "
                f"{section_name} fields: {', '.join(sorted(known))}"
            )
        if field_name == "models":
            raise SpecError(
                "the traffic mix cannot be a sweep axis; "
                "write one study per mix"
            )
        if field_name == "faults" and isinstance(value, Mapping):
            # Sweepable fault scenarios: axis values are whole fault
            # sections ({"events": [...]}; {} sweeps in the fault-free
            # baseline).
            value = FaultSpec.from_dict(value)
        if field_name == "weights" and isinstance(value, (list, tuple)):
            value = tuple(value)
        return replace(
            self, **{section_name: replace(section, **{field_name: value})}
        )

    def expand(self) -> list["StudySpec"]:
        """The grid: fully-resolved point specs, first axis outermost.

        Every returned spec has an empty sweep, so its digest identifies
        exactly one simulation point.
        """
        base = replace(self, sweep=SweepSpec())
        points = [base]
        for axis in self.sweep.axes:
            points = [
                point.with_override(axis.field, value)
                for point in points
                for value in axis.values
            ]
        return points

    @property
    def digest(self) -> str:
        return spec_digest(self)


def spec_digest(spec: StudySpec) -> str:
    """Stable content hash of a spec (schema version included).

    Two specs with equal contents share a digest across processes and
    machines; any field change — however deep — moves it.  The study
    compiler folds this into every scenario cell's cache key.
    """
    payload = json.dumps(spec.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
