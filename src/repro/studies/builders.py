"""Spec builders: the legacy CLI verbs expressed as declarative studies.

Each function returns the :class:`~repro.studies.spec.StudySpec` that
reproduces one pre-spec entry point — ``repro run``, the ``repro dse``
sweeps, ``repro serve-study`` — so the old verbs become thin wrappers
over ``run_study`` with bit-identical results, and any of them can be
exported to JSON, tweaked and re-run through ``repro study``.
"""

from __future__ import annotations

from typing import Sequence

from .spec import (
    ModelTraffic,
    PlatformSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
)

SIPH = "2.5D-CrossLight-SiPh"


def run_spec(model: str, platform: str, controller: str = "resipi",
             batch_size: int = 1) -> StudySpec:
    """``repro run``: one isolated (batched) inference."""
    return StudySpec(
        name=f"run-{model}",
        kind="inference",
        workload=WorkloadSpec(
            models=(ModelTraffic(model=model),), batch_size=batch_size
        ),
        platform=PlatformSpec(name=platform, controller=controller),
    )


def wavelength_sweep_spec(model: str,
                          values: Sequence[int]) -> StudySpec:
    """``repro dse --sweep wavelengths``: SiPh vs wavelength count."""
    return StudySpec(
        name=f"dse-wavelengths-{model}",
        kind="inference",
        workload=WorkloadSpec(models=(ModelTraffic(model=model),)),
        platform=PlatformSpec(name=SIPH),
        sweep=SweepSpec(axes=(
            SweepAxis(field="platform.n_wavelengths",
                      values=tuple(values)),
        )),
    )


def gateway_sweep_spec(model: str, values: Sequence[int]) -> StudySpec:
    """``repro dse --sweep gateways``: SiPh vs gateways per chiplet."""
    return StudySpec(
        name=f"dse-gateways-{model}",
        kind="inference",
        workload=WorkloadSpec(models=(ModelTraffic(model=model),)),
        platform=PlatformSpec(name=SIPH),
        sweep=SweepSpec(axes=(
            SweepAxis(field="platform.gateways_per_chiplet",
                      values=tuple(values)),
        )),
    )


def controller_ablation_spec(model_names: Sequence[str],
                             controllers: Sequence[str]) -> StudySpec:
    """``repro dse --sweep controllers``: reconfiguration policies."""
    return StudySpec(
        name="dse-controllers",
        kind="inference",
        workload=WorkloadSpec(
            models=tuple(ModelTraffic(model=name) for name in model_names)
        ),
        platform=PlatformSpec(name=SIPH),
        sweep=SweepSpec(axes=(
            SweepAxis(field="platform.controller",
                      values=tuple(controllers)),
        )),
    )


def serve_study_spec(
    model: str,
    platforms: Sequence[str],
    controllers: Sequence[str],
    scheduler: SchedulerSpec,
    rates_rps: Sequence[float],
    arrival: str = "poisson",
    duration_s: float = 2e-3,
    seed: int = 7,
) -> StudySpec:
    """``repro serve-study``: rate x policy x controller x platform.

    Axis order (platform, controller, rate) reproduces the legacy cell
    order; the compiler pins the controller axis off the SiPh platform
    exactly like the legacy study avoided duplicate baseline cells.
    """
    return StudySpec(
        name=f"serve-{model}",
        kind="serving",
        workload=WorkloadSpec(
            models=(ModelTraffic(model=model),),
            arrival=arrival,
            duration_s=duration_s,
            seed=seed,
        ),
        platform=PlatformSpec(name=platforms[0],
                              controller=controllers[0]),
        scheduler=scheduler,
        sweep=SweepSpec(axes=(
            SweepAxis(field="platform.name", values=tuple(platforms)),
            SweepAxis(field="platform.controller",
                      values=tuple(controllers)),
            SweepAxis(field="workload.rate_rps",
                      values=tuple(rates_rps)),
        )),
    )


# ---------------------------------------------------------------------------
# The first two spec-only scenarios (nothing but a spec: no new code).
# ---------------------------------------------------------------------------


def multi_tenant_mix_spec(
    lenet_fraction: float = 0.7,
    rate_rps: float = 30e3,
    duration_s: float = 1e-3,
    lenet_slo_s: float = 150e-6,
    resnet_slo_s: float = 5e-3,
    policy: str = "edf",
    seed: int = 7,
) -> StudySpec:
    """Multi-tenant model zoo: 70% LeNet5 / 30% ResNet50, one fabric.

    Both models stay weight-resident under one shared
    :class:`~repro.mapping.residency.WeightResidency`; per-model SLOs
    drive deadline assignment, and the per-model stats in the result
    split p99/goodput/violations by tenant.
    """
    return StudySpec(
        name="multi-tenant-lenet5-resnet50",
        kind="serving",
        workload=WorkloadSpec(
            models=(
                ModelTraffic(model="LeNet5", fraction=lenet_fraction,
                             slo_s=lenet_slo_s, priority=1),
                ModelTraffic(model="ResNet50",
                             fraction=1.0 - lenet_fraction,
                             slo_s=resnet_slo_s, priority=0),
            ),
            arrival="poisson",
            rate_rps=rate_rps,
            duration_s=duration_s,
            seed=seed,
        ),
        platform=PlatformSpec(name=SIPH, controller="resipi"),
        scheduler=SchedulerSpec(policy=policy, max_inflight=4),
    )


def slo_attainment_sweep_spec(
    tight_model: str = "LeNet5",
    tight_slo_s: float = 100e-6,
    loose_model: str = "MobileNetV2",
    loose_slo_s: float = 4e-3,
    tight_fraction: float = 0.8,
    rates_rps: Sequence[float] = (100e3, 200e3),
    duration_s: float = 1e-3,
    burstiness: float = 8.0,
    shed_expired: bool = True,
    seed: int = 7,
) -> StudySpec:
    """SLO attainment under MMPP bursts: ``fifo`` vs ``edf`` dispatch.

    A two-class mix — a tight-SLO interactive model and a loose-SLO
    batch model — under a bursty two-state MMPP.  FIFO lets the slow
    tenant's requests block the tight deadlines at the head of the
    queue; EDF jumps them, so the per-model attainment split quantifies
    what deadline-aware dispatch buys (one SLO class would make edf
    degenerate to fifo: equal offsets preserve arrival order).
    """
    return StudySpec(
        name=f"slo-attainment-{tight_model}",
        kind="serving",
        workload=WorkloadSpec(
            models=(
                ModelTraffic(model=tight_model, fraction=tight_fraction,
                             slo_s=tight_slo_s, priority=1),
                ModelTraffic(model=loose_model,
                             fraction=1.0 - tight_fraction,
                             slo_s=loose_slo_s, priority=0),
            ),
            arrival="mmpp",
            burstiness=burstiness,
            duration_s=duration_s,
            seed=seed,
        ),
        platform=PlatformSpec(name=SIPH, controller="resipi"),
        scheduler=SchedulerSpec(policy="fifo",
                                shed_expired=shed_expired),
        sweep=SweepSpec(axes=(
            SweepAxis(field="scheduler.policy", values=("fifo", "edf")),
            SweepAxis(field="workload.rate_rps",
                      values=tuple(rates_rps)),
        )),
    )
