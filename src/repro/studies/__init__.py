"""Declarative scenario API: one spec, one registry, one entry point.

Every study — the paper's evaluation matrix, DSE sweeps, serving
scenarios — is a :class:`~repro.studies.spec.StudySpec`: a frozen,
JSON-round-trippable value describing the traffic mix (with per-model
SLOs and priorities), the platform, the scheduling policy and the sweep
grid.  :func:`~repro.studies.compile.run_study` is the single compiler
that lowers any spec onto the parallel/cached cell machinery; the
registries in :mod:`~repro.studies.registry` resolve every name with
typed did-you-mean errors and accept external plugins.

Typical use::

    from repro.studies import StudySpec, run_study

    spec = StudySpec.from_json(Path("study.json").read_text())
    study = run_study(spec, jobs=4, cache_dir=".repro-cache")
    for point in study.points:
        print(point.spec.digest[:12], point.results)

The compiler and spec builders load lazily (PEP 562): the experiment
layer imports :mod:`.registry`/:mod:`.spec` from here, and the
compiler imports the experiment layer — eager package-level imports
would make that a cycle.
"""

from importlib import import_module

from .registry import (
    ARRIVALS,
    BATCH_POLICIES,
    CONTROLLERS,
    HAZARDS,
    MODELS,
    PLATFORMS,
    ROUTERS,
    Registry,
)
from .spec import (
    FIDELITY_MODES,
    SPEC_SCHEMA_VERSION,
    ClusterSpec,
    FaultEventSpec,
    FaultSpec,
    FidelitySpec,
    ModelTraffic,
    NodeOverrideSpec,
    PlatformSpec,
    ResilienceSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    TelemetrySpec,
    WorkloadSpec,
    spec_digest,
)

_LAZY_EXPORTS = {
    ".compile": (
        "InferenceCell",
        "StudyPoint",
        "StudyResult",
        "build_policy",
        "expand_points",
        "build_fidelity",
        "build_telemetry",
        "is_degenerate_cluster",
        "load_spec",
        "lower_cluster_point",
        "lower_study",
        "render_dry_run",
        "render_study",
        "resolve_config",
        "run_study",
        "simulate_inference_cell",
    ),
    ".builders": (
        "controller_ablation_spec",
        "gateway_sweep_spec",
        "multi_tenant_mix_spec",
        "run_spec",
        "serve_study_spec",
        "slo_attainment_sweep_spec",
        "wavelength_sweep_spec",
    ),
}

_LAZY_HOMES = {
    name: module
    for module, names in _LAZY_EXPORTS.items()
    for name in names
}


def __getattr__(name: str):
    home = _LAZY_HOMES.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(import_module(home, __name__), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


__all__ = [
    "ARRIVALS",
    "BATCH_POLICIES",
    "CONTROLLERS",
    "ClusterSpec",
    "FIDELITY_MODES",
    "FaultEventSpec",
    "FaultSpec",
    "FidelitySpec",
    "HAZARDS",
    "MODELS",
    "ModelTraffic",
    "NodeOverrideSpec",
    "PLATFORMS",
    "PlatformSpec",
    "ROUTERS",
    "ResilienceSpec",
    "Registry",
    "SPEC_SCHEMA_VERSION",
    "SchedulerSpec",
    "StudySpec",
    "SweepAxis",
    "SweepSpec",
    "TelemetrySpec",
    "WorkloadSpec",
    "spec_digest",
    *_LAZY_HOMES,
]
