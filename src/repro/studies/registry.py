"""Plugin-style registries: every name the study layer can look up.

One :class:`Registry` per extension point — platforms, models,
interposer controllers, arrival processes and batch policies — replaces
the name→builder dictionaries that used to be scattered across
``experiments/runner.py``, ``experiments/serving_study.py`` and
``cli.py``.  A failed lookup raises
:class:`~repro.errors.UnknownNameError` with a did-you-mean suggestion
instead of a bare ``KeyError``, and downstream code (including external
plugins) can ``register`` new entries without touching any other layer.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from ..config import PlatformConfig
from ..core.accelerator import (
    CrossLight25DAWGR,
    CrossLight25DElec,
    CrossLight25DSiPh,
    MonolithicCrossLight,
)
from ..dnn.zoo import (
    EXTENDED_BUILDERS,
    MODEL_BUILDERS,
    TRANSFORMER_BUILDERS,
)
from ..errors import ConfigurationError, UnknownNameError
from ..interposer.photonic.controllers import CONTROLLER_FACTORIES
from ..interposer.photonic.faults import HAZARD_FACTORIES
from ..serving.scheduler import POLICY_NAMES, BatchPolicy
from ..sim.traffic import ClosedLoopClients, MMPPArrivals, PoissonArrivals


class Registry:
    """Ordered name→factory map with typed lookup errors.

    ``backing`` shares a pre-existing mutable dict instead of copying
    it: registrations through the registry become visible to legacy
    code still reading that dict directly (and vice versa).  ``label``
    is the registry's own name (``"ROUTERS"``): lookup errors carry it
    so multi-registry specs say *which* table rejected a name.
    """

    def __init__(self, kind: str,
                 entries: Mapping[str, Callable] | None = None,
                 backing: dict[str, Callable] | None = None,
                 label: str | None = None):
        self.kind = kind
        self.label = label
        if backing is not None:
            if entries is not None:
                raise ConfigurationError(
                    "pass either entries (copied) or backing (shared)"
                )
            self._entries = backing
        else:
            self._entries = dict(entries or {})

    def register(self, name: str, factory: Callable,
                 overwrite: bool = False) -> Callable:
        """Add an entry; refuses silent shadowing unless ``overwrite``."""
        if name in self._entries and not overwrite:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._entries[name] = factory
        return factory

    def get(self, name: str) -> Callable:
        """The factory under ``name``; typed error with suggestions."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(
                self.kind, name, self.names(), registry=self.label
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Platforms (Table 3 names + the AWGR topology baseline).
# ---------------------------------------------------------------------------


def _reject_faults(name: str, faults) -> None:
    if faults is not None:
        raise ConfigurationError(
            f"platform {name!r} has no fault model; hazard timelines "
            "apply to the photonic interposer platform "
            "('2.5D-CrossLight-SiPh')"
        )


def _build_crosslight(config: PlatformConfig, controller: str, faults=None):
    _reject_faults("CrossLight", faults)
    return MonolithicCrossLight(config)


def _build_25d_elec(config: PlatformConfig, controller: str, faults=None):
    _reject_faults("2.5D-CrossLight-Elec", faults)
    return CrossLight25DElec(config)


def _build_25d_siph(config: PlatformConfig, controller: str, faults=None):
    return CrossLight25DSiPh(config, controller=controller, faults=faults)


def _build_25d_awgr(config: PlatformConfig, controller: str, faults=None):
    _reject_faults("2.5D-CrossLight-AWGR", faults)
    return CrossLight25DAWGR(config)


PLATFORMS = Registry("platform", label="PLATFORMS", entries={
    "CrossLight": _build_crosslight,
    "2.5D-CrossLight-Elec": _build_25d_elec,
    "2.5D-CrossLight-SiPh": _build_25d_siph,
    "2.5D-CrossLight-AWGR": _build_25d_awgr,
})
"""Platform factories ``(config, controller) -> platform``; only the
SiPh interposer actually consumes the controller name."""


MODELS = Registry("model", label="MODELS",
                  entries={**MODEL_BUILDERS, **EXTENDED_BUILDERS,
                           **TRANSFORMER_BUILDERS})
"""DNN builders by zoo name (Table 2, the extended zoo, and the
transformer zoo for autoregressive serving)."""


CONTROLLERS = Registry("controller", label="CONTROLLERS",
                       backing=CONTROLLER_FACTORIES)
"""Interposer reconfiguration controllers (SiPh platform).

Shares the factory dict the SiPh platform constructs from, so a
controller registered here is buildable — not just spec-valid."""


HAZARDS = Registry("hazard", label="HAZARDS", backing=HAZARD_FACTORIES)
"""Hazard-event factories for the platform fault timeline.

Each factory takes the full :class:`~repro.studies.spec.FaultEventSpec`
field set (minus ``kind``) and returns a typed hazard event, rejecting
knobs that do not apply to its kind.  Shares the factory dict the
hazard engine's spec lowering reads, so externally registered hazard
kinds are buildable from JSON specs."""


# ---------------------------------------------------------------------------
# Arrival processes: factories from (rate, seed, spec knobs).
# ---------------------------------------------------------------------------


def _poisson(rate_rps: float, seed: int, **_: Any) -> PoissonArrivals:
    return PoissonArrivals(rate_rps=rate_rps, seed=seed)


def _mmpp(rate_rps: float, seed: int, burstiness: float = 4.0,
          dwell_s: float = 20e-6, **_: Any) -> MMPPArrivals:
    return MMPPArrivals(rate_rps=rate_rps, burstiness=burstiness,
                        dwell_s=dwell_s, seed=seed)


def _closed(rate_rps: float, seed: int, think_time_s: float = 10e-6,
            **_: Any) -> ClosedLoopClients:
    # Closed loop: the rate sets the client population via the
    # zero-service-time bound n = rate * think.
    n_clients = max(1, round(rate_rps * think_time_s))
    return ClosedLoopClients(n_clients=n_clients,
                             think_time_s=think_time_s, seed=seed)


ARRIVALS = Registry("arrival process", label="ARRIVALS", entries={
    "poisson": _poisson,
    "mmpp": _mmpp,
    "closed": _closed,
})
"""Arrival-process factories ``(rate_rps, seed, **knobs) -> process``."""


# ---------------------------------------------------------------------------
# Batch/dispatch policies: factories from scheduler-spec knobs.
# ---------------------------------------------------------------------------


def _policy_factory(name: str) -> Callable[..., BatchPolicy]:
    """One factory per policy name, forwarding every spec field.

    Forwarding (rather than cherry-picking) keeps
    :class:`BatchPolicy`'s own validation in force: e.g.
    ``max_batch > 1`` with a single-dispatch policy raises instead of
    silently no-oping.
    """
    def build(max_batch: int, batch_timeout_s: float, max_inflight: int,
              shed_expired: bool) -> BatchPolicy:
        return BatchPolicy(
            name=name, max_batch=max_batch,
            batch_timeout_s=batch_timeout_s, max_inflight=max_inflight,
            shed_expired=shed_expired,
        )
    return build


BATCH_POLICIES = Registry("batch policy", label="BATCH_POLICIES", entries={
    name: _policy_factory(name) for name in POLICY_NAMES
})
"""Dispatch-policy factories
``(max_batch, batch_timeout_s, max_inflight, shed_expired) -> policy``."""


# ---------------------------------------------------------------------------
# Cluster routing policies.
#
# Imported last: ``repro.cluster`` depends on the serving layer (and its
# study module resolves names against the registries above), so pulling
# it in before those registries exist would be a cycle.
# ---------------------------------------------------------------------------

from ..cluster.hazards import NODE_HAZARD_KINDS  # noqa: E402,F401  (registers the node-* hazard kinds in HAZARD_FACTORIES)
from ..cluster.router import ROUTER_FACTORIES  # noqa: E402

ROUTERS = Registry("router", label="ROUTERS", backing=ROUTER_FACTORIES)
"""Cluster routing-policy factories ``(n_nodes, weights) -> policy``.

Shares the factory dict the cluster router builds from, so a router
registered here is buildable — not just spec-valid."""
