"""The study compiler: lower a :class:`StudySpec` onto simulation cells.

``run_study`` is the single entry point every experiment-facing surface
goes through — the legacy CLI verbs build specs and call it, the
``repro study`` verb feeds it JSON files, and library users hand it
spec objects.  It expands the sweep grid, resolves every name against
the registries (typed did-you-mean errors), lowers each grid point onto
the cheapest cell shape that expresses it, and runs the cells through
the runner's parallel/cached machinery:

* ``inference`` points with ``batch_size == 1`` lower to the plain
  matrix cells — **the exact cache keys and simulations of the legacy
  paths**, so spec-driven and legacy invocations share warm caches and
  produce bit-identical results;
* ``serving`` points that a classic :class:`ServingCell` can express
  lower to one — bit-identical results through the same simulation,
  with keys shared with legacy invocations at the current
  ``SERVING_STUDY_VERSION``;
* everything else — traffic mixes, SLOs, deadline policies, residency
  budgets, tuned arrival knobs — lowers to a
  :class:`~repro.experiments.serving_study.ScenarioCell` keyed by the
  point's spec digest via ``cell_key(..., extra=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from ..cluster.hazards import node_hazard_timeline, validate_node_timeline
from ..cluster.router import HealthPolicy
from ..cluster.study import (
    ClusterCell,
    render_cluster_study,
    render_node_table,
)
from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.metrics import InferenceResult
from ..dnn.workload import extract_workload
from ..dnn.zoo import TRANSFORMER_BUILDERS
from ..errors import SpecError
from ..interposer.photonic.controllers import EPOCH_CONTROLLERS
from ..experiments.runner import (
    CacheStats,
    ResultCache,
    build_platform,
    cell_key,
    run_cached,
)
from ..experiments.serving_study import (
    ScenarioCell,
    ServingCell,
    hazard_timeline,
    platform_timelines,
    render_fault_windows,
    render_sequence_summary,
    render_serving_study,
    render_slo_summary,
    simulate_study_cells,
)
from ..serving.lifecycle import ResiliencePolicy
from ..serving.metrics import ClusterResult, ServingResult
from ..serving.scheduler import BatchPolicy
from .registry import (
    ARRIVALS,
    BATCH_POLICIES,
    CONTROLLERS,
    MODELS,
    PLATFORMS,
    ROUTERS,
)
from .spec import FaultSpec, SchedulerSpec, StudySpec, WorkloadSpec

SIPH_PLATFORM = "2.5D-CrossLight-SiPh"
"""The one platform whose fabric takes a reconfiguration controller."""


# ---------------------------------------------------------------------------
# Inference cells (spec-driven batched variant of the matrix cell).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InferenceCell:
    """One isolated (batched) inference of one model on one platform."""

    platform: str
    model: str
    controller: str
    config: PlatformConfig
    batch_size: int = 1
    faults: FaultSpec | None = None

    def key(self) -> str:
        """Plain matrix-cell key at batch 1 (cache-compatible with the
        legacy runner); batched and fault-injected cells get their own
        key space."""
        faulted = self.faults is not None and bool(self.faults.events)
        if self.batch_size == 1 and not faulted:
            return cell_key(
                self.platform, self.model, self.controller, self.config
            )
        extra = {"study": "inference", "batch_size": self.batch_size}
        if faulted:
            extra["faults"] = self.faults.to_dict()
        return cell_key(
            self.platform, self.model, self.controller, self.config,
            extra=extra,
        )


def simulate_inference_cell(cell: InferenceCell) -> InferenceResult:
    """Worker body: identical to the runner's matrix cell at batch 1."""
    platform = build_platform(
        cell.platform, cell.config, cell.controller,
        faults=hazard_timeline(cell.faults),
    )
    workload = extract_workload(MODELS.get(cell.model)())
    return platform.run_workload(workload, batch_size=cell.batch_size)


# ---------------------------------------------------------------------------
# Spec resolution: names, configs, policies, the expanded grid.
# ---------------------------------------------------------------------------


def build_policy(scheduler: SchedulerSpec) -> BatchPolicy:
    """Resolve a scheduler spec into a dispatch policy (typed errors)."""
    return BATCH_POLICIES.get(scheduler.policy)(
        scheduler.max_batch, scheduler.batch_timeout_s,
        scheduler.max_inflight, scheduler.shed_expired,
    )


def build_resilience(spec: StudySpec) -> ResiliencePolicy | None:
    """The point's request-lifecycle policy; ``None`` when degenerate.

    A spec with no timeout, no retries and no hedging lowers to the
    classic submit-once path — the cell carries no policy, keeps its
    pre-resilience cache key and simulates bit-identically.
    """
    section = spec.resilience
    policy = ResiliencePolicy(
        timeout_s=section.timeout_s,
        max_retries=section.max_retries,
        retry_backoff_s=section.retry_backoff_s,
        retry_jitter=section.retry_jitter,
        retry_budget=section.retry_budget,
        hedge_delay_s=section.hedge_delay_s,
    )
    return policy if policy else None


def build_fidelity(spec: StudySpec):
    """The point's hybrid-fidelity policy; ``None`` when degenerate.

    A ``fidelity`` section in ``des`` mode (the default) lowers to the
    classic full-DES path — the cell carries no policy, keeps its
    pre-fidelity cache key and simulates bit-identically.  The armed
    modes compile to a picklable
    :class:`~repro.experiments.fidelity.FidelityPolicy` the cell
    workers dispatch on.
    """
    section = spec.fidelity
    if not section:
        return None
    # Deferred: the fidelity engine imports the cell modules this
    # compiler lowers onto.
    from ..experiments.fidelity import FidelityPolicy

    return FidelityPolicy(
        mode=section.mode,
        error_budget=section.error_budget,
        calibration_s=section.calibration_s,
    )


def build_telemetry(spec: StudySpec):
    """The point's telemetry policy; ``None`` when degenerate.

    The default (empty) telemetry section lowers to the untelemetered
    classic path — the cell carries no policy, keeps its pre-telemetry
    cache key and simulates bit-identically.  An armed section compiles
    to a picklable :class:`~repro.obs.policy.TelemetryPolicy` the cell
    workers build a recording session from.
    """
    section = spec.telemetry
    if not section:
        return None
    from ..obs.policy import TelemetryPolicy

    return TelemetryPolicy(
        trace=section.trace,
        sample_rate=section.sample_rate,
        metrics_interval_s=section.metrics_interval_s,
    )


def _validate_fidelity(point: StudySpec) -> None:
    """Reject spec features the fluid model cannot express.

    The spec layer already rejects closed-loop arrivals, armed
    resilience and deadline shedding; here the compiler checks the
    parts that need lowering context — fabric-level hazards (the fluid
    queue has no photonic-channel model; only compute-side
    ``chiplet-mac-degrade`` windows map onto capacity segments) and
    health-checked routing (probe dynamics are inherently event-driven).
    """
    if not point.fidelity:
        return
    _, compute = platform_timelines(point.platform.faults)
    n_fabric = len(point.platform.faults.events) - len(compute)
    if n_fabric:
        raise SpecError(
            "fidelity modes fluid/auto support only compute-side "
            "platform faults (chiplet-mac-degrade); "
            f"{n_fabric} fabric-level event(s) present — use "
            "fidelity mode 'des' for photonic hazard studies"
        )
    if build_health(point) is not None:
        raise SpecError(
            "fidelity modes fluid/auto do not model probe-based health "
            "checking; use fidelity mode 'des' (or omniscient signals)"
        )


def build_health(spec: StudySpec) -> HealthPolicy | None:
    """The point's router signal path; ``None`` means omniscient —
    zero staleness and no probes lower to the legacy instant-view
    router (unchanged cache key, bit-identical results)."""
    section = spec.resilience
    if not section.health_checked:
        return None
    return HealthPolicy(
        signal_staleness_s=section.signal_staleness_s,
        probe_interval_s=section.probe_interval_s,
        probe_misses=section.probe_misses,
    )


def resolve_config(spec: StudySpec,
                   base_config: PlatformConfig | None = None
                   ) -> PlatformConfig:
    """The platform configuration of one resolved grid point."""
    config = base_config or DEFAULT_PLATFORM
    if spec.platform.n_wavelengths is not None:
        config = config.with_wavelengths(spec.platform.n_wavelengths)
    if spec.platform.gateways_per_chiplet is not None:
        config = config.with_gateways_per_chiplet(
            spec.platform.gateways_per_chiplet
        )
    if spec.platform.controller_epoch_s is not None:
        config = config.with_epoch(spec.platform.controller_epoch_s)
    return config


def _validate_names(spec: StudySpec) -> None:
    """Resolve every registry name once, before any simulation runs."""
    PLATFORMS.get(spec.platform.name)
    CONTROLLERS.get(spec.platform.controller)
    for entry in spec.workload.models:
        MODELS.get(entry.model)
    if spec.platform.controller_epoch_s is not None:
        # Inert-knob rejection: the epoch only drives the reconfiguring
        # controllers, and only the SiPh fabric has one at all.
        if spec.platform.name != SIPH_PLATFORM:
            raise SpecError(
                f"platform.controller_epoch_s applies only to "
                f"{SIPH_PLATFORM!r} (the platform with a reconfiguration "
                f"controller), got platform {spec.platform.name!r}"
            )
        if spec.platform.controller not in EPOCH_CONTROLLERS:
            raise SpecError(
                f"platform.controller_epoch_s applies only to the "
                f"epoch-driven controllers "
                f"({', '.join(EPOCH_CONTROLLERS)}); the "
                f"{spec.platform.controller!r} controller never acts on "
                "the epoch"
            )
    for entry in spec.workload.models:
        prompt, output = spec.workload.resolved_lengths(entry)
        is_transformer = entry.model in TRANSFORMER_BUILDERS
        if output > 0 and not is_transformer:
            raise SpecError(
                f"sequence lengths on {entry.model!r}, which has no "
                "attention layers; autoregressive serving needs a "
                f"transformer model "
                f"({', '.join(sorted(TRANSFORMER_BUILDERS))}) — CNN "
                "tenants keep prompt_tokens/output_tokens at 0"
            )
        if spec.kind == "serving" and is_transformer and output == 0:
            raise SpecError(
                f"transformer model {entry.model!r} in a serving mix "
                "needs sequence lengths (set output_tokens, plus "
                "prompt_tokens, at the workload or tenant level)"
            )
    if spec.platform.faults.events:
        if spec.platform.name != SIPH_PLATFORM:
            raise SpecError(
                f"platform.faults applies only to {SIPH_PLATFORM!r} "
                f"(the hazard engine mutates its photonic fabric), got "
                f"platform {spec.platform.name!r}"
            )
        if spec.kind == "serving":
            platform_timelines(spec.platform.faults)
        else:
            # No serving layer: compute-side kinds rejected too.
            hazard_timeline(spec.platform.faults)
    if spec.kind == "serving":
        ARRIVALS.get(spec.workload.arrival)
        build_policy(spec.scheduler)
        _validate_fidelity(spec)
    if spec.cluster is not None:
        _validate_cluster(spec)


def _validate_cluster(spec: StudySpec) -> None:
    """Resolve and sanity-check one point's cluster section."""
    cluster = spec.cluster
    # Building the policy also validates the weights against the
    # replica count (the weighted router demands one per node).
    ROUTERS.get(cluster.router)(cluster.replicas, cluster.weights)
    for override in cluster.nodes:
        if override.controller is not None:
            CONTROLLERS.get(override.controller)
    events = node_hazard_timeline(cluster.faults)
    # Probe-based health checking routes on a stale view instead of
    # raising, so (only then) a correlated outage may take down the
    # whole fleet.
    validate_node_timeline(
        events, cluster.replicas,
        allow_total_outage=spec.resilience.probe_interval_s is not None,
    )


def expand_points(spec: StudySpec) -> list[StudySpec]:
    """The resolved grid, with the controller axis pinned off-SiPh.

    Controllers only differentiate the photonic platform: grid points
    on other platforms collapse onto the controller axis's first value
    and deduplicate, exactly like the legacy serving study avoided
    duplicate baseline cells.
    """
    points = spec.expand()
    controller_axis = next(
        (axis for axis in spec.sweep.axes
         if axis.field == "platform.controller"),
        None,
    )
    if controller_axis is None:
        return points
    seen: set[str] = set()
    pinned: list[StudySpec] = []
    for point in points:
        if point.platform.name != SIPH_PLATFORM:
            point = point.with_override(
                "platform.controller", controller_axis.values[0]
            )
        digest = point.digest
        if digest not in seen:
            seen.add(digest)
            pinned.append(point)
    return pinned


def _workload_defaults() -> dict[str, float]:
    return {
        name: WorkloadSpec.__dataclass_fields__[name].default
        for name in ("burstiness", "dwell_s", "think_time_s")
    }


def is_degenerate_resilience(point: StudySpec) -> bool:
    """Whether the point's resilience section is the no-op identity.

    The default section (no timeouts, no retries, no hedging,
    omniscient signals) adds nothing to the simulation; the compiler
    then lowers onto the pre-resilience cell shapes so cache keys and
    results match the legacy paths exactly.
    """
    return not point.resilience


def is_classic_serving(point: StudySpec) -> bool:
    """Whether a classic :class:`ServingCell` expresses this point.

    Classic cells keep legacy cache keys and bit-identical legacy
    results, so the compiler prefers them whenever the point uses none
    of the scenario-only features.
    """
    workload, scheduler = point.workload, point.scheduler
    defaults = _workload_defaults()
    return (
        len(workload.models) == 1
        and workload.models[0].fraction == 1.0
        and workload.models[0].slo_s is None
        and workload.models[0].priority == 0
        and not workload.has_sequences
        and not workload.has_quotas
        and scheduler.policy in ("fifo", "max-batch")
        and scheduler.starvation_age_s is None
        and not scheduler.shed_expired
        and point.residency_capacity_bits is None
        and not point.platform.faults.events
        and workload.burstiness == defaults["burstiness"]
        and workload.dwell_s == defaults["dwell_s"]
        and workload.think_time_s == defaults["think_time_s"]
        and is_degenerate_resilience(point)
    )


def is_degenerate_cluster(point: StudySpec) -> bool:
    """Whether the point's cluster section is the single-node identity.

    A 1-replica cluster with no node-level hazards and no per-node
    overrides routes every request to its only node — the simulation
    is exactly the single-node serving path, so the compiler strips the
    section and lowers onto the existing cells (legacy cache keys,
    bit-identical results).  The router name cannot matter with one
    node; it is still validated.
    """
    cluster = point.cluster
    return (
        cluster is None
        or (
            cluster.replicas == 1
            and not cluster.faults.events
            and not cluster.nodes
        )
    )


def lower_cluster_point(point: StudySpec,
                        config: PlatformConfig) -> ClusterCell:
    """One resolved fleet point to its cluster cell."""
    workload, cluster = point.workload, point.cluster
    return ClusterCell(
        platform=point.platform.name,
        models=tuple(
            (entry.model, entry.fraction, entry.slo_s, entry.priority)
            for entry in workload.models
        ),
        controller=point.platform.controller,
        policy=build_policy(point.scheduler),
        arrival_kind=workload.arrival,
        rate_rps=workload.rate_rps,
        duration_s=workload.duration_s,
        seed=workload.seed,
        config=config,
        replicas=cluster.replicas,
        router=cluster.router,
        weights=cluster.weights,
        reroute_on_fail=cluster.reroute_on_fail,
        node_overrides=tuple(
            (override.node, override.controller, override.n_wavelengths,
             override.gateways_per_chiplet)
            for override in cluster.nodes
        ),
        node_faults=cluster.faults if cluster.faults.events else None,
        platform_faults=(
            point.platform.faults if point.platform.faults.events else None
        ),
        burstiness=workload.burstiness,
        dwell_s=workload.dwell_s,
        think_time_s=workload.think_time_s,
        residency_capacity_bits=point.residency_capacity_bits,
        digest=point.digest,
        resilience=build_resilience(point),
        health=build_health(point),
        fidelity=build_fidelity(point),
        telemetry=build_telemetry(point),
    )


def lower_serving_point(point: StudySpec,
                        config: PlatformConfig
                        ) -> "ServingCell | ScenarioCell | ClusterCell":
    """One resolved serving point to its cheapest cell shape."""
    if not is_degenerate_cluster(point):
        return lower_cluster_point(point, config)
    if point.cluster is not None:
        # The 1-replica identity: strip the section so the point keys
        # and simulates exactly like the single-node serving path.
        point = replace(point, cluster=None)
    workload = point.workload
    policy = build_policy(point.scheduler)
    if is_classic_serving(point):
        return ServingCell(
            platform=point.platform.name,
            model=workload.models[0].model,
            controller=point.platform.controller,
            policy=policy,
            arrival_kind=workload.arrival,
            rate_rps=workload.rate_rps,
            duration_s=workload.duration_s,
            seed=workload.seed,
            config=config,
            fidelity=build_fidelity(point),
            telemetry=build_telemetry(point),
        )
    return ScenarioCell(
        platform=point.platform.name,
        models=tuple(
            (entry.model, entry.fraction, entry.slo_s, entry.priority)
            for entry in workload.models
        ),
        controller=point.platform.controller,
        policy=policy,
        arrival_kind=workload.arrival,
        rate_rps=workload.rate_rps,
        duration_s=workload.duration_s,
        seed=workload.seed,
        config=config,
        burstiness=workload.burstiness,
        dwell_s=workload.dwell_s,
        think_time_s=workload.think_time_s,
        residency_capacity_bits=point.residency_capacity_bits,
        faults=(
            point.platform.faults if point.platform.faults.events else None
        ),
        digest=point.digest,
        resilience=build_resilience(point),
        fidelity=build_fidelity(point),
        sequences=(
            tuple(
                workload.resolved_lengths(entry)
                for entry in workload.models
            )
            if workload.has_sequences else ()
        ),
        length_distribution=workload.length_distribution,
        quotas=(
            tuple(entry.quota for entry in workload.models)
            if workload.has_quotas else ()
        ),
        starvation_age_s=point.scheduler.starvation_age_s,
        telemetry=build_telemetry(point),
    )


# ---------------------------------------------------------------------------
# The entry point.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StudyPoint:
    """One resolved grid point and its result(s).

    Serving points carry exactly one :class:`ServingResult`; inference
    points carry one :class:`InferenceResult` per model of the
    workload, in mix order.
    """

    spec: StudySpec
    results: tuple


@dataclass(frozen=True)
class StudyResult:
    """Everything ``run_study`` produced for one spec.

    ``cache_stats`` tallies the run's result-cache behaviour (hits,
    misses, corrupt evictions, cells actually simulated) — the CLI
    prints its summary after each ``repro study`` run.
    """

    spec: StudySpec
    points: tuple[StudyPoint, ...]
    cache_stats: "CacheStats | None" = None

    def flat_results(self) -> list:
        """Every result across the grid, point order."""
        return [result for point in self.points for result in point.results]

    def serving_results(self) -> list[ServingResult]:
        return [r for r in self.flat_results()
                if isinstance(r, ServingResult)]

    def cluster_results(self) -> list[ClusterResult]:
        return [r for r in self.flat_results()
                if isinstance(r, ClusterResult)]


def lower_study(
    spec: StudySpec, base_config: PlatformConfig | None = None
) -> tuple[list[StudySpec], list[list]]:
    """The fully lowered grid — nothing simulated.

    Returns the resolved grid points and, per point, the list of cells
    it lowers onto (one serving cell, or one inference cell per model
    of the workload).  Shared by :func:`run_study` (which simulates
    them) and :func:`render_dry_run` (which only prints them).
    """
    points = expand_points(spec)
    for point in points:
        _validate_names(point)
    cells_per_point: list[list] = []
    for point in points:
        config = resolve_config(point, base_config)
        if spec.kind == "inference":
            cells_per_point.append([
                InferenceCell(
                    platform=point.platform.name,
                    model=entry.model,
                    controller=point.platform.controller,
                    config=config,
                    batch_size=point.workload.batch_size,
                    faults=(
                        point.platform.faults
                        if point.platform.faults.events else None
                    ),
                )
                for entry in point.workload.models
            ])
        else:
            cells_per_point.append(
                [lower_serving_point(point, config)]
            )
    return points, cells_per_point


def run_study(spec: StudySpec, jobs: int = 1,
              cache_dir: str | Path | None = None,
              base_config: PlatformConfig | None = None,
              stats: CacheStats | None = None) -> StudyResult:
    """Execute a declarative study spec end to end.

    Expands the sweep grid, lowers every point onto simulation cells
    and runs them through the shared parallel (``jobs``) and
    disk-cached (``cache_dir``) cell machinery.  ``base_config`` is a
    Python-API escape hatch for sweeps over a non-default
    :class:`PlatformConfig`; spec-level platform knobs apply on top of
    it (JSON specs always start from the Table 1 defaults).  Callers
    running several studies in one invocation (e.g. ``repro dse``) can
    pass a shared ``stats`` accumulator to aggregate hit/miss counts.
    """
    points, cells_per_point = lower_study(spec, base_config)
    cells = [cell for group in cells_per_point for cell in group]
    if stats is None:
        stats = CacheStats()

    if spec.kind == "inference":
        results = run_cached(
            cells, lambda cell: cell.key(), simulate_inference_cell,
            jobs=jobs, cache_dir=cache_dir, stats=stats,
        )
    else:
        results = simulate_study_cells(
            cells, jobs=jobs, cache_dir=cache_dir, stats=stats,
        )

    grouped = []
    cursor = 0
    for group in cells_per_point:
        grouped.append(tuple(results[cursor:cursor + len(group)]))
        cursor += len(group)

    return StudyResult(
        spec=spec,
        points=tuple(
            StudyPoint(spec=point, results=group)
            for point, group in zip(points, grouped)
        ),
        cache_stats=stats,
    )


def render_study(study: StudyResult) -> str:
    """Text report for one executed study, by kind."""
    lines = [f"study: {study.spec.name} ({study.spec.kind}, "
             f"{len(study.points)} point(s))", ""]
    if study.spec.kind == "inference":
        header = (
            f"{'platform':<28}{'model':<14}{'power':>11}{'latency':>15}"
            f"{'EPB':>15}"
        )
        lines += [header, "-" * len(header)]
        lines += [result.summary_row() for result in study.flat_results()]
    else:
        results = study.serving_results()
        if results:
            lines.append(render_serving_study(results))
            sequence_table = render_sequence_summary(results)
            if sequence_table:
                lines += ["", "transformer serving (token metrics):",
                          sequence_table]
            slo_table = render_slo_summary(results)
            if slo_table:
                lines += ["", "per-model SLO attainment:", slo_table]
            fault_table = render_fault_windows(results)
            if fault_table:
                lines += ["", "fault windows (before/during/after):",
                          fault_table]
        fleet = study.cluster_results()
        if fleet:
            if results:
                lines.append("")
            lines.append(render_cluster_study(fleet))
            lines += ["", "per-node breakdown:", render_node_table(fleet)]
            slo_table = render_slo_summary(fleet)
            if slo_table:
                lines += ["", "per-model SLO attainment:", slo_table]
    return "\n".join(lines)


def _swept_values(point: StudySpec, spec: StudySpec) -> str:
    """Readable ``field=value`` summary of one grid point's axes."""
    parts = []
    for axis in spec.sweep.axes:
        section_name, _, field_name = axis.field.partition(".")
        if field_name:
            value = getattr(getattr(point, section_name), field_name)
        else:
            value = getattr(point, section_name)
        if hasattr(value, "to_dict"):
            value = f"<{len(value.to_dict().get('events', []))} event(s)>"
        parts.append(f"{axis.field}={value}")
    return ", ".join(parts) if parts else "-"


def render_dry_run(spec: StudySpec,
                   base_config: PlatformConfig | None = None,
                   cache_dir: str | Path | None = None) -> str:
    """The expanded grid, per-cell cache keys and the spec digest —
    everything ``run_study`` would do short of simulating.

    Cheap spec debugging: verifies names resolve, shows how each point
    lowers (classic vs scenario cells share or fork cache keys here)
    and prints the exact on-disk keys a ``--cache-dir`` run would use.
    With ``cache_dir``, each cell is annotated ``cached``/``cold``
    against the store's current contents and the header counts how many
    cells a real run would actually simulate.
    """
    points, cells_per_point = lower_study(spec, base_config)
    n_cells = sum(len(group) for group in cells_per_point)
    cache = ResultCache(cache_dir) if cache_dir else None
    cached_cells = 0
    if cache is not None:
        cached_cells = sum(
            1 for group in cells_per_point for cell in group
            if cache._path(cell.key()).exists()
        )
    lines = [
        f"study: {spec.name} ({spec.kind}) — dry run, nothing simulated",
        f"spec digest: {spec.digest}",
        f"grid: {len(points)} point(s), {n_cells} cell(s)"
        + (
            f" — {cached_cells} cached, {n_cells - cached_cells} to "
            f"simulate" if cache is not None else ""
        ),
    ]
    for axis in spec.sweep.axes:
        lines.append(f"  axis {axis.field}: {list(axis.values)}")
    lines.append("")
    for index, (point, group) in enumerate(zip(points, cells_per_point)):
        lines.append(
            f"point {index}: {_swept_values(point, spec)} "
            f"[digest {point.digest[:12]}]"
        )
        resilience = build_resilience(point)
        health = build_health(point)
        if resilience is not None or health is not None:
            parts = []
            if resilience is not None:
                parts.append(f"lifecycle {resilience.label}")
            if health is not None:
                parts.append(f"signals {health.label}")
            lines.append(f"  resilience: {', '.join(parts)}")
        fidelity = build_fidelity(point)
        if fidelity is not None:
            lines.append(
                f"  fidelity: {fidelity.mode} "
                f"(budget {fidelity.error_budget:g})"
            )
        telemetry = build_telemetry(point)
        if telemetry is not None:
            lines.append(f"  telemetry: {telemetry.label}")
        for cell in group:
            label = type(cell).__name__
            model = (
                getattr(cell, "grid_label", None)
                or getattr(cell, "model", None)
                or cell.mix_label
            )
            line = f"  {label:<14}{model:<32} key {cell.key()}"
            if cache is not None:
                state = (
                    "cached" if cache._path(cell.key()).exists()
                    else "cold"
                )
                line += f" [{state}]"
            lines.append(line)
    return "\n".join(lines)


def load_spec(path: str | Path) -> StudySpec:
    """Read and validate a spec JSON file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise SpecError(f"cannot read spec file {path}: {error}") from None
    return StudySpec.from_json(text)
