"""Command-line interface.

Exposes the experiment drivers without writing Python::

    python -m repro table1                 # print Table 1
    python -m repro table2                 # print Table 2
    python -m repro fig7 --metric latency  # one Fig. 7 panel
    python -m repro table3                 # Table 3 + headline ratios
    python -m repro calibrate              # full paper-vs-measured report
    python -m repro run --model ResNet50 --platform siph --batch 4
    python -m repro dse --sweep wavelengths --jobs 4 --cache-dir .repro-cache
    python -m repro serve-study --model LeNet5 --rates 20e3,50e3,100e3
    python -m repro study examples/study_spec.json --jobs 4
    python -m repro bench --check        # perf-regression smoke check

Experiment commands accept ``--jobs N`` (process fan-out over the
simulation cells) and ``--cache-dir PATH`` (persistent result cache:
repeated invocations never re-simulate identical cells).

``run``, ``dse`` and ``serve-study`` are thin wrappers over the
declarative scenario API (:mod:`repro.studies`): each builds a
:class:`~repro.studies.spec.StudySpec` and executes it through
``run_study`` — the same entry point the ``study`` verb feeds with a
JSON spec file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .config import DEFAULT_PLATFORM
from .dnn import zoo
from .errors import ReproError

PLATFORM_ALIASES = {
    "mono": "CrossLight",
    "crosslight": "CrossLight",
    "elec": "2.5D-CrossLight-Elec",
    "siph": "2.5D-CrossLight-SiPh",
    "awgr": "2.5D-CrossLight-AWGR",
}
"""CLI platform aliases -> registry (Table 3) platform names."""


def _cmd_table1(_: argparse.Namespace) -> int:
    from .experiments.tables import render_table1

    print(render_table1(DEFAULT_PLATFORM))
    return 0


def _cmd_table2(_: argparse.Namespace) -> int:
    from .experiments.tables import render_table2

    print(render_table2())
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _runner(args: argparse.Namespace):
    from .experiments.runner import ExperimentRunner

    return ExperimentRunner(jobs=args.jobs, cache_dir=args.cache_dir)


def _cmd_fig7(args: argparse.Namespace) -> int:
    from .experiments.fig7 import METRICS, fig7_series, render_fig7

    runner = _runner(args)
    metrics = [args.metric] if args.metric else list(METRICS)
    for metric in metrics:
        print(render_fig7(fig7_series(runner, metric)))
        print()
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .experiments.table3 import build_table3, render_table3

    print(render_table3(build_table3(_runner(args))))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .experiments.calibration import calibration_report, shape_checks

    runner = _runner(args)
    print(calibration_report(runner))
    failed = [check for check in shape_checks(runner) if not check.passed]
    return 1 if failed else 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .studies.builders import run_spec
    from .studies.compile import run_study

    spec = run_spec(
        model=args.model,
        platform=PLATFORM_ALIASES[args.platform],
        controller=args.controller,
        batch_size=args.batch,
    )
    study = run_study(spec, jobs=args.jobs, cache_dir=args.cache_dir)
    result = study.points[0].results[0]
    print(result.summary_row())
    print(f"batch {result.batch_size}: "
          f"{result.latency_per_inference_s * 1e3:.4f} ms/image, "
          f"{result.throughput_inferences_per_s:.1f} inferences/s, "
          f"{result.total_energy_j * 1e3:.3f} mJ total")
    if args.timeline:
        print(f"\n{'layer':<28}{'start(us)':>12}{'end(us)':>12}")
        for timing in result.layer_timeline:
            print(f"{timing.name:<28}{timing.start_s * 1e6:>12.2f}"
                  f"{timing.end_s * 1e6:>12.2f}")
    if args.cache_dir:
        print(f"\n{study.cache_stats.summary()}")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from .experiments import dse
    from .experiments.quantization_study import (
        quantization_study,
        render_quantization_study,
    )
    from .experiments.runner import CacheStats

    stats = CacheStats()
    if args.sweep == "wavelengths":
        print(dse.render_sweep(
            "wavelength sweep",
            dse.sweep_wavelengths(args.model, jobs=args.jobs,
                                  cache_dir=args.cache_dir, stats=stats),
        ))
    elif args.sweep == "gateways":
        print(dse.render_sweep(
            "gateway sweep",
            dse.sweep_gateways(args.model, jobs=args.jobs,
                               cache_dir=args.cache_dir, stats=stats),
        ))
    elif args.sweep == "controllers":
        results = dse.controller_ablation(
            model_names=(args.model,), jobs=args.jobs,
            cache_dir=args.cache_dir, stats=stats,
        )
        for (policy, model), result in sorted(results.items()):
            print(f"{policy:<10}{model:<14}{result.latency_s * 1e3:10.4f} ms"
                  f"{result.average_power_w:9.2f} W")
    elif args.sweep == "mapping":
        results = dse.mapping_ablation(model_names=(args.model,))
        for (policy, model), result in sorted(results.items()):
            print(f"{policy:<10}{model:<14}{result.latency_s * 1e3:10.4f} ms"
                  f"{result.average_power_w:9.2f} W")
    else:  # quantization
        print(render_quantization_study(quantization_study(
            args.model, jobs=args.jobs, cache_dir=args.cache_dir,
            stats=stats,
        )))
    if args.cache_dir and args.sweep != "mapping":
        print(f"\n{stats.summary()}")
    if args.sweep != "mapping":
        slowest = stats.render_slowest(5)
        if slowest:
            print(f"\n{slowest}")
    return 0


SERVE_PLATFORM_CHOICES = ("mono", "elec", "siph")
"""Aliases servable by ``serve-study`` (resolved via
``PLATFORM_ALIASES``; the AWGR topology baseline stays one-shot-only
until its serving behavior is characterised)."""


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _non_negative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _parse_rates(text: str) -> tuple[float, ...]:
    try:
        rates = tuple(float(token) for token in text.split(",") if token)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"rates must be comma-separated numbers, got {text!r}"
        )
    if not rates or any(rate <= 0 for rate in rates):
        raise argparse.ArgumentTypeError(
            f"rates must be positive, got {text!r}"
        )
    return rates


def _cmd_serve_study(args: argparse.Namespace) -> int:
    from .experiments.export import serving_results_to_json, write_text
    from .experiments.serving_study import (
        render_serving_study,
        render_slo_summary,
    )
    from .studies.builders import serve_study_spec
    from .studies.compile import run_study
    from .studies.spec import SchedulerSpec

    if args.policy == "max-batch":
        # Batching knobs are meaningful (and cache-key-relevant) only
        # under max-batch; leave them at spec defaults otherwise so
        # identical simulations share identical keys.
        scheduler = SchedulerSpec(
            policy=args.policy,
            max_batch=args.max_batch,
            batch_timeout_s=args.batch_timeout_us * 1e-6,
            max_inflight=args.max_inflight,
            shed_expired=args.shed_expired,
        )
    else:
        scheduler = SchedulerSpec(
            policy=args.policy,
            max_inflight=args.max_inflight,
            shed_expired=args.shed_expired,
        )
    spec = serve_study_spec(
        model=args.model,
        platforms=tuple(
            PLATFORM_ALIASES[alias] for alias in args.platforms
        ),
        controllers=tuple(args.controllers),
        scheduler=scheduler,
        rates_rps=args.rates,
        arrival=args.arrival,
        duration_s=args.duration_us * 1e-6,
        seed=args.seed,
    )
    study = run_study(spec, jobs=args.jobs, cache_dir=args.cache_dir)
    results = study.serving_results()
    print(render_serving_study(results))
    slo_table = render_slo_summary(results)
    if slo_table:
        print(f"\nper-model SLO attainment:\n{slo_table}")
    if args.cache_dir:
        print(f"\n{study.cache_stats.summary()}")
    if study.cache_stats is not None:
        slowest = study.cache_stats.render_slowest(5)
        if slowest:
            print(f"\n{slowest}")
    if args.json:
        write_text(args.json, serving_results_to_json(results))
        print(f"\nwrote {args.json}")
    return 0


def _telemetry_cell_label(result) -> str:
    """One-line trace-process label for a telemetered cell result."""
    parts = [
        getattr(result, "model", "?"),
        getattr(result, "platform", "?"),
        getattr(result, "policy", "?"),
    ]
    router = getattr(result, "router", None)
    if router is not None:
        parts.append(f"{router}x{getattr(result, 'n_nodes', '?')}")
    rate = getattr(result, "offered_rps", None)
    if rate is not None:
        parts.append(f"{rate:g}rps")
    return "/".join(str(part) for part in parts)


def _telemetry_summaries(results) -> "list[tuple[str, object]]":
    """``(label, TelemetrySummary)`` pairs from telemetered results."""
    summaries = []
    for result in results:
        summary = getattr(result, "telemetry", None)
        if summary is not None:
            summaries.append((_telemetry_cell_label(result), summary))
    return summaries


def _cmd_study(args: argparse.Namespace) -> int:
    from .experiments.export import (
        results_to_csv,
        results_to_json,
        study_results_to_csv,
        study_results_to_json,
        write_text,
    )
    from .studies.compile import (
        load_spec,
        render_dry_run,
        render_study,
        run_study,
    )

    try:
        spec = load_spec(args.spec)
        if args.dry_run:
            print(render_dry_run(spec, cache_dir=args.cache_dir))
            return 0
        study = run_study(spec, jobs=args.jobs, cache_dir=args.cache_dir)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_study(study))
    if study.cache_stats is not None and args.cache_dir:
        print(f"\n{study.cache_stats.summary()}")
    if study.cache_stats is not None:
        slowest = study.cache_stats.render_slowest(5)
        if slowest:
            print(f"\n{slowest}")
    flat = study.flat_results()
    telemetry = _telemetry_summaries(flat)
    for label, summary in telemetry:
        block = summary.render_sparklines()
        if block:
            print(f"\ntelemetry [{label}] "
                  f"({summary.policy_label}, {summary.span_count} spans, "
                  f"{summary.sampled_requests}/{summary.total_requests} "
                  f"requests traced)\n{block}")
    if (args.trace or args.metrics_csv) and not telemetry:
        print("error: --trace/--metrics-csv need an armed telemetry "
              "section in the spec (no cell produced telemetry)",
              file=sys.stderr)
        return 2
    if args.trace:
        from .obs import chrome_trace_json

        write_text(args.trace, chrome_trace_json(telemetry))
        print(f"\nwrote {args.trace} "
              f"(load at https://ui.perfetto.dev)")
    if args.metrics_csv:
        from .obs import telemetry_series_to_csv

        write_text(args.metrics_csv, telemetry_series_to_csv(telemetry))
        print(f"wrote {args.metrics_csv}")
    if args.json:
        if spec.kind == "serving":
            write_text(args.json, study_results_to_json(flat))
        else:
            write_text(args.json, results_to_json(flat))
        print(f"\nwrote {args.json}")
    if args.csv:
        if spec.kind == "serving":
            write_text(args.csv, study_results_to_csv(flat))
        else:
            write_text(args.csv, results_to_csv(flat))
        print(f"wrote {args.csv}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import bench

    names = None
    if args.only:
        try:
            names = bench.select_benchmarks(args.only)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    medians = bench.run_suite(names=names, repeats=args.repeats)
    baseline = None
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        baseline = bench.load_baseline(baseline_path)
    print(bench.render_suite(medians, baseline))
    if not args.check:
        return 0
    if baseline is None:
        print(
            f"no baseline at {args.baseline}; generate one with "
            "`python benchmarks/run_all.py`",
            file=sys.stderr,
        )
        return 2
    failures = bench.check_against_baseline(medians, baseline)
    if failures:
        print("\nPERF REGRESSION:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"\nperf check OK: all benchmarks within "
        f"{bench.REGRESSION_FACTOR:.1f}x of baseline"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Machine Learning Accelerators in 2.5D "
            "Chiplet Platforms with Silicon Photonics' (DATE 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared performance options for every simulation-heavy command.
    perf = argparse.ArgumentParser(add_help=False)
    perf.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="fan simulations out over N worker processes",
    )
    perf.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent result cache; identical cells never re-simulate",
    )

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("table2", help="print Table 2").set_defaults(
        func=_cmd_table2
    )

    fig7 = sub.add_parser("fig7", parents=[perf],
                          help="regenerate Fig. 7 panels")
    fig7.add_argument("--metric", choices=("power", "latency", "epb"),
                      default=None, help="one panel (default: all three)")
    fig7.set_defaults(func=_cmd_fig7)

    sub.add_parser(
        "table3", parents=[perf],
        help="regenerate Table 3 + headline ratios",
    ).set_defaults(func=_cmd_table3)
    sub.add_parser(
        "calibrate", parents=[perf],
        help="paper-vs-measured report with shape checks",
    ).set_defaults(func=_cmd_calibrate)

    run = sub.add_parser("run", parents=[perf],
                         help="simulate one model on one platform")
    run.add_argument("--model", choices=tuple(zoo.MODEL_BUILDERS),
                     default="ResNet50")
    run.add_argument("--platform", choices=tuple(PLATFORM_ALIASES),
                     default="siph")
    run.add_argument("--controller",
                     choices=("resipi", "prowaves", "static"),
                     default="resipi",
                     help="interposer policy (siph platform only)")
    run.add_argument("--batch", type=int, default=1)
    run.add_argument("--timeline", action="store_true",
                     help="print the per-layer timeline")
    run.set_defaults(func=_cmd_run)

    dse = sub.add_parser("dse", parents=[perf],
                         help="design-space exploration sweeps")
    dse.add_argument("--sweep",
                     choices=("wavelengths", "gateways", "controllers",
                              "mapping", "quantization"),
                     default="wavelengths")
    dse.add_argument("--model", choices=tuple(zoo.MODEL_BUILDERS),
                     default="ResNet50")
    dse.set_defaults(func=_cmd_dse)

    serve = sub.add_parser(
        "serve-study", parents=[perf],
        help="latency-under-load curves: rate x policy x platform",
    )
    serve.add_argument("--model", choices=tuple(zoo.MODEL_BUILDERS),
                       default="LeNet5")
    serve.add_argument("--platforms", nargs="+",
                       choices=SERVE_PLATFORM_CHOICES,
                       default=["siph"],
                       help="platforms to sweep (default: siph)")
    serve.add_argument("--controllers", nargs="+",
                       choices=("resipi", "prowaves", "static"),
                       default=["resipi"],
                       help="interposer policies (siph platform only)")
    serve.add_argument("--policy",
                       choices=("fifo", "max-batch", "edf", "priority"),
                       default="fifo", help="dispatch/batching policy")
    serve.add_argument("--shed-expired", action="store_true",
                       help="shed requests whose deadline already passed")
    serve.add_argument("--max-batch", type=_positive_int, default=8,
                       help="batch size cap for --policy max-batch")
    serve.add_argument("--batch-timeout-us", type=_non_negative_float,
                       default=20.0, help="batch-gathering timeout (us)")
    serve.add_argument("--max-inflight", type=_positive_int, default=4,
                       help="admission cap on concurrent executions")
    serve.add_argument("--arrival", choices=("poisson", "mmpp", "closed"),
                       default="poisson", help="arrival process")
    serve.add_argument("--rates", type=_parse_rates,
                       default=(20e3, 50e3, 100e3, 200e3),
                       help="comma-separated arrival rates (requests/s)")
    serve.add_argument("--duration-us", type=_positive_float,
                       default=2000.0,
                       help="injection window per point (us)")
    serve.add_argument("--seed", type=int, default=7,
                       help="arrival-process RNG seed")
    serve.add_argument("--json", default=None, metavar="PATH",
                       help="also export the sweep as JSON")
    serve.set_defaults(func=_cmd_serve_study)

    study = sub.add_parser(
        "study", parents=[perf],
        help="run a declarative study spec (JSON) end to end",
    )
    study.add_argument("spec", metavar="SPEC.json",
                       help="study spec file (see examples/study_spec.json)")
    study.add_argument("--json", default=None, metavar="PATH",
                       help="also export every point result as JSON")
    study.add_argument("--csv", default=None, metavar="PATH",
                       help="also export every point result as CSV")
    study.add_argument("--dry-run", action="store_true",
                       help="print the expanded grid, per-cell cache keys "
                            "and the spec digest without simulating")
    study.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Perfetto-loadable Chrome trace-event "
                            "JSON (needs a telemetry section with "
                            "trace: true)")
    study.add_argument("--metrics-csv", default=None, metavar="PATH",
                       help="write the telemetry gauge time series as CSV")
    study.set_defaults(func=_cmd_study)

    bench = sub.add_parser(
        "bench", help="time the simulator microbenchmarks"
    )
    bench.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if any benchmark regressed >2x vs baseline",
    )
    bench.add_argument(
        "--baseline", default="BENCH_sim.json", metavar="PATH",
        help="baseline file written by benchmarks/run_all.py",
    )
    bench.add_argument("--repeats", type=_positive_int, default=5,
                       help="timing repeats per benchmark")
    bench.add_argument("--only", default=None, metavar="SUBSTRING",
                       help="run only benchmarks whose name contains "
                            "SUBSTRING; --check then gates only those")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
