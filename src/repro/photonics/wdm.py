"""Wavelength-division multiplexing (WDM) grid and signal helpers.

WDM lets many carriers share one waveguide (Section II): 64 wavelengths at
12 Gb/s each give a 768 Gb/s waveguide in the paper's configuration.  This
module builds wavelength grids, checks them against ring spectra
(FSR aliasing, adjacent-channel crosstalk) and aggregates bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigurationError
from ..units import SPEED_OF_LIGHT
from . import constants
from .microring import MicroringResonator


@dataclass(frozen=True)
class WDMGrid:
    """A dense-WDM wavelength comb.

    Channels are spaced uniformly in *frequency* (ITU convention) around a
    center wavelength.

    Parameters
    ----------
    n_channels:
        Number of wavelengths in the comb.
    channel_spacing_hz:
        Frequency spacing between adjacent channels (Hz).
    center_wavelength_m:
        Wavelength of the comb center (m).
    """

    n_channels: int
    channel_spacing_hz: float = constants.WDM_CHANNEL_SPACING_HZ
    center_wavelength_m: float = constants.C_BAND_CENTER_M

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ConfigurationError(
                f"need at least one channel, got {self.n_channels}"
            )
        if self.channel_spacing_hz <= 0:
            raise ConfigurationError("channel spacing must be positive")

    @property
    def center_frequency_hz(self) -> float:
        """Optical frequency of the comb center (Hz)."""
        return SPEED_OF_LIGHT / self.center_wavelength_m

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self.n_channels:
            raise ConfigurationError(
                f"channel {channel} out of range [0, {self.n_channels})"
            )

    def frequency_hz(self, channel: int) -> float:
        """Optical frequency of channel ``channel`` (0-based, Hz)."""
        self._check_channel(channel)
        offset = channel - (self.n_channels - 1) / 2.0
        return self.center_frequency_hz + offset * self.channel_spacing_hz

    def wavelength_m(self, channel: int) -> float:
        """Vacuum wavelength of channel ``channel`` (m)."""
        return SPEED_OF_LIGHT / self.frequency_hz(channel)

    def wavelengths(self) -> Iterator[float]:
        """Iterate channel wavelengths from channel 0 upward (m)."""
        for channel in range(self.n_channels):
            yield self.wavelength_m(channel)

    @property
    def span_m(self) -> float:
        """Spectral span between the outermost channels (m)."""
        if self.n_channels == 1:
            return 0.0
        return abs(self.wavelength_m(0) - self.wavelength_m(self.n_channels - 1))

    @property
    def adjacent_spacing_m(self) -> float:
        """Approximate wavelength spacing of adjacent channels (m)."""
        center = self.center_wavelength_m
        return self.channel_spacing_hz * center ** 2 / SPEED_OF_LIGHT

    def aggregate_bandwidth_bps(self, data_rate_bps: float) -> float:
        """Total waveguide bandwidth with every channel carrying
        ``data_rate_bps`` (b/s)."""
        if data_rate_bps <= 0:
            raise ConfigurationError("data rate must be positive")
        return self.n_channels * data_rate_bps

    def fits_in_fsr(self, ring: MicroringResonator) -> bool:
        """Whether the comb fits inside one ring FSR (no aliasing).

        A ring resonates periodically; if the comb spans more than one
        FSR, two comb channels alias onto the same resonance and the
        weight banks / filters cannot address channels independently.
        """
        return self.span_m < ring.free_spectral_range_m

    def worst_case_crosstalk_db(self, ring: MicroringResonator) -> float:
        """Adjacent-channel crosstalk of a ring filter on this grid (dB).

        Returns the suppression (negative dB) of the nearest neighbouring
        channel; architectural rule of thumb wants < -20 dB.
        """
        if self.n_channels == 1:
            return -math.inf
        return ring.crosstalk_db(self.adjacent_spacing_m)


def max_channels_for_crosstalk(
    ring: MicroringResonator,
    crosstalk_floor_db: float = -20.0,
    center_wavelength_m: float = constants.C_BAND_CENTER_M,
) -> int:
    """Largest DWDM comb a ring supports within a crosstalk floor.

    Finds the tightest ITU-style spacing whose adjacent-channel crosstalk
    stays below ``crosstalk_floor_db``, then counts how many such channels
    fit in the ring's FSR.  Used by design-space exploration to bound the
    wavelength count (Section VII, open challenge 3).
    """
    if crosstalk_floor_db >= 0:
        raise ConfigurationError("crosstalk floor must be negative dB")
    # Invert the Lorentzian: find spacing where suppression == floor.
    half_width = ring.fwhm_m / 2.0
    ratio = 10.0 ** (-crosstalk_floor_db / 10.0)  # >= 1
    spacing_m = half_width * math.sqrt(ratio - 1.0)
    n_by_fsr = int(ring.free_spectral_range_m // spacing_m)
    return max(1, n_by_fsr)
