"""Microring resonator (MR) model.

MRs are the workhorse device of the architecture (Section II of the
paper): gateway filters and modulators on the interposer, and weight /
activation imprinting elements inside the photonic MAC units.

The model captures the add-drop ring's Lorentzian spectral response,
free-spectral range from the ring geometry, resonance tuning via the
electro-optic (EO) or thermo-optic (TO) effect with the associated power
cost, and amplitude-weighting: choosing a detuning so that the drop-port
transmission equals a desired weight value in [0, 1] — the core operation
of broadcast-and-weight computation [35].
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from . import constants


class TuningMechanism(enum.Enum):
    """How an MR's resonance is shifted."""

    ELECTRO_OPTIC = "eo"
    THERMO_OPTIC = "to"


@dataclass(frozen=True)
class MicroringResonator:
    """An add-drop microring resonator.

    Parameters
    ----------
    resonance_wavelength_m:
        Resonant wavelength the ring is nominally tuned to (m).
    quality_factor:
        Loaded quality factor; sets the Lorentzian linewidth.
    radius_m:
        Ring radius (m); sets the free-spectral range.
    tuning:
        Tuning mechanism (EO for fast weight updates, TO for trimming).
    """

    resonance_wavelength_m: float = constants.C_BAND_CENTER_M
    quality_factor: float = constants.MR_QUALITY_FACTOR
    radius_m: float = constants.MR_RADIUS_M
    tuning: TuningMechanism = TuningMechanism.ELECTRO_OPTIC
    through_loss_db: float = constants.MR_THROUGH_LOSS_DB
    drop_loss_db: float = constants.MR_DROP_LOSS_DB
    group_index: float = constants.GROUP_INDEX_SOI

    def __post_init__(self) -> None:
        if self.resonance_wavelength_m <= 0:
            raise ConfigurationError("resonance wavelength must be positive")
        if self.quality_factor <= 0:
            raise ConfigurationError("quality factor must be positive")
        if self.radius_m <= 0:
            raise ConfigurationError("ring radius must be positive")

    # -- spectral geometry ---------------------------------------------------

    @property
    def circumference_m(self) -> float:
        """Ring circumference (m)."""
        return 2.0 * math.pi * self.radius_m

    @property
    def fwhm_m(self) -> float:
        """Full width at half maximum of the resonance (m)."""
        return self.resonance_wavelength_m / self.quality_factor

    @property
    def free_spectral_range_m(self) -> float:
        """Free spectral range (m): spacing between adjacent resonances."""
        return self.resonance_wavelength_m ** 2 / (
            self.group_index * self.circumference_m
        )

    @property
    def finesse(self) -> float:
        """Finesse = FSR / FWHM (dimensionless)."""
        return self.free_spectral_range_m / self.fwhm_m

    # -- spectral response -----------------------------------------------------

    def drop_transmission(self, wavelength_m: float) -> float:
        """Fraction of input power routed to the drop port at ``wavelength_m``.

        Lorentzian lineshape peaked at the resonance; the peak value is
        reduced by the drop insertion loss.
        """
        half_width = self.fwhm_m / 2.0
        detuning = wavelength_m - self.resonance_wavelength_m
        lorentzian = half_width ** 2 / (detuning ** 2 + half_width ** 2)
        peak = 10.0 ** (-self.drop_loss_db / 10.0)
        return peak * lorentzian

    def through_transmission(self, wavelength_m: float) -> float:
        """Fraction of input power continuing on the through port.

        Energy conservation up to the per-pass through loss: what is not
        dropped continues, attenuated by the off-resonance ring loss.
        """
        half_width = self.fwhm_m / 2.0
        detuning = wavelength_m - self.resonance_wavelength_m
        lorentzian = half_width ** 2 / (detuning ** 2 + half_width ** 2)
        passby = 10.0 ** (-self.through_loss_db / 10.0)
        return passby * (1.0 - lorentzian)

    def crosstalk_db(self, channel_spacing_m: float) -> float:
        """Drop-port suppression of a neighbour ``channel_spacing_m`` away (dB).

        Returns a negative number: how far below the peak the adjacent WDM
        channel lands.  Used to size the minimum channel spacing of a WDM
        grid shared with this ring.
        """
        if channel_spacing_m <= 0:
            raise ConfigurationError("channel spacing must be positive")
        peak = self.drop_transmission(self.resonance_wavelength_m)
        neighbour = self.drop_transmission(
            self.resonance_wavelength_m + channel_spacing_m
        )
        return 10.0 * math.log10(neighbour / peak)

    # -- tuning ------------------------------------------------------------------

    @property
    def tuning_power_w_per_nm(self) -> float:
        """Tuning power cost per nm of resonance shift (W/nm)."""
        if self.tuning is TuningMechanism.ELECTRO_OPTIC:
            return constants.MR_EO_TUNING_POWER_W_PER_NM
        return constants.MR_TO_TUNING_POWER_W_PER_NM

    @property
    def tuning_time_s(self) -> float:
        """Settling time of a tuning step (s)."""
        if self.tuning is TuningMechanism.ELECTRO_OPTIC:
            return constants.MR_EO_SWITCHING_TIME_S
        return constants.MR_TO_SWITCHING_TIME_S

    def tuning_power_w(self, shift_m: float) -> float:
        """Power to hold a resonance shift of ``shift_m`` meters (W)."""
        shift_nm = abs(shift_m) * 1e9
        return self.tuning_power_w_per_nm * shift_nm

    def trimming_power_w(
        self, trim_range_nm: float = constants.MR_THERMAL_TRIMMING_NM
    ) -> float:
        """Average thermal trimming power against process variation (W)."""
        return constants.MR_TO_TUNING_POWER_W_PER_NM * trim_range_nm

    # -- amplitude weighting (broadcast-and-weight) ---------------------------------

    def detuning_for_weight(self, weight: float) -> float:
        """Resonance detuning (m) that sets drop transmission to ``weight``.

        ``weight`` is the desired normalised amplitude in (0, 1]; it is
        interpreted relative to the on-resonance peak (i.e. insertion loss
        is calibrated out, as CrossLight's tuning-circuit co-design does).
        Inverting the Lorentzian:  delta = (FWHM/2) * sqrt(1/w - 1).
        """
        if not 0.0 < weight <= 1.0:
            raise ConfigurationError(
                f"weight must be in (0, 1], got {weight!r}"
            )
        half_width = self.fwhm_m / 2.0
        return half_width * math.sqrt(1.0 / weight - 1.0)

    def weight_for_detuning(self, detuning_m: float) -> float:
        """Normalised drop amplitude achieved at a given detuning (m)."""
        half_width = self.fwhm_m / 2.0
        return half_width ** 2 / (detuning_m ** 2 + half_width ** 2)

    def weighting_power_w(self, weight: float) -> float:
        """Tuning power to imprint ``weight`` via resonance detuning (W)."""
        return self.tuning_power_w(self.detuning_for_weight(weight))
