"""Microdisk resonator model.

Microdisks (Section II) are whispering-gallery-mode resonators: more
compact than microrings at equal FSR but with higher operating losses.
HolyLight [23] and LightBulb [24] build accelerators from them.  We model
a microdisk as a microring with disk-specific default losses and half the
footprint radius, reusing the Lorentzian response.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import constants
from .microring import MicroringResonator, TuningMechanism


@dataclass(frozen=True)
class MicrodiskResonator(MicroringResonator):
    """A microdisk resonator; spectrally ring-like, physically smaller.

    Defaults differ from :class:`MicroringResonator` in footprint
    (``radius_m``) and the higher through/drop losses of disk modes.
    """

    radius_m: float = constants.MICRODISK_RADIUS_M
    through_loss_db: float = constants.MICRODISK_THROUGH_LOSS_DB
    drop_loss_db: float = constants.MICRODISK_DROP_LOSS_DB
    tuning: TuningMechanism = TuningMechanism.ELECTRO_OPTIC

    @property
    def footprint_m2(self) -> float:
        """Physical footprint (m^2); the microdisk's key advantage."""
        import math

        return math.pi * self.radius_m ** 2
