"""Default silicon-photonic device constants.

Every value carries a comment naming its source: the paper's Table 1 where
the paper pins it, otherwise the cited device literature (CrossLight [21],
ReSiPI [37], PROWAVES [11], Bogaerts et al. [34], Miller [13]).  Models
take these as *defaults*; every constructor accepts overrides so that
design-space exploration can sweep them.
"""

from __future__ import annotations

# --- Operating band ---------------------------------------------------------

C_BAND_CENTER_M = 1550e-9
"""Center wavelength of the C band (m); standard for SOI photonics."""

WDM_CHANNEL_SPACING_HZ = 100e9
"""Dense-WDM grid spacing (Hz); ITU 100 GHz grid, typical in PNoC studies."""

GROUP_INDEX_SOI = 4.2
"""Group index of a standard 450x220 nm SOI strip waveguide (dimensionless).

Sets on-chip light propagation speed; from Bogaerts et al. [34].
"""

# --- Waveguide losses --------------------------------------------------------

WAVEGUIDE_PROPAGATION_LOSS_DB_PER_CM = 1.0
"""Interposer-scale strip waveguide propagation loss (dB/cm).

ReSiPI [37] and PROWAVES [11] both assume ~1 dB/cm for interposer links.
"""

WAVEGUIDE_BEND_LOSS_DB = 0.01
"""Loss per 90-degree bend (dB); typical for >5 um radius bends."""

WAVEGUIDE_CROSSING_LOSS_DB = 0.05
"""Loss per waveguide crossing (dB); optimised multimode-interference
crossings reach 0.02-0.2 dB.  ReSiPI-class interposers route to avoid most
crossings, so the per-crossing figure matters less than its existence."""

# --- Couplers / splitters ----------------------------------------------------

GRATING_COUPLER_LOSS_DB = 1.5
"""Fiber-to-chip grating coupler insertion loss (dB); Nambiar et al. [33]."""

EDGE_COUPLER_LOSS_DB = 1.0
"""Edge coupler insertion loss (dB)."""

SPLITTER_INSERTION_LOSS_DB = 0.1
"""Excess insertion loss of a Y-branch / 1x2 MMI splitter (dB), on top of
the intrinsic 3 dB split."""

# --- Microring resonators ----------------------------------------------------

MR_THROUGH_LOSS_DB = 0.02
"""Per-ring through (pass-by) loss seen by off-resonance wavelengths (dB).

CrossLight [21] uses 0.02 dB/ring; with 64-wavelength MRGs this term
dominates the gateway insertion loss."""

MR_DROP_LOSS_DB = 0.7
"""Drop-port insertion loss when a ring filters its resonant wavelength
(dB); typical add-drop ring figure."""

MR_MODULATION_INSERTION_LOSS_DB = 1.0
"""Insertion loss of an active MR modulator on its resonant carrier (dB)."""

MR_QUALITY_FACTOR = 8000.0
"""Loaded quality factor of add-drop rings used in weight banks and
gateway filters.  CrossLight's cross-layer optimisation targets 5k-10k to
balance crosstalk against tuning cost."""

MR_RADIUS_M = 10e-6
"""Ring radius (m); 10 um rings give ~9 nm FSR at 1550 nm."""

MR_EO_TUNING_POWER_W_PER_NM = 4e-3
"""Electro-optic (carrier-injection) tuning power per nm of resonance
shift (W/nm); ~4 mW/nm, used for fast weight updates in CrossLight."""

MR_TO_TUNING_POWER_W_PER_NM = 24e-3
"""Thermo-optic tuning power per nm of shift (W/nm); ~24 mW/nm is the
figure CrossLight [21] adopts for fabrication-variation trimming."""

MR_THERMAL_TRIMMING_NM = 0.35
"""Average resonance trimming range needed to correct process variation
(nm); from CrossLight's variation analysis."""

MR_EO_SWITCHING_TIME_S = 50e-12
"""EO tuning settling time (s); tens of ps enables GHz-rate weight reuse."""

MR_TO_SWITCHING_TIME_S = 4e-6
"""TO tuning settling time (s); microseconds, used only for trimming."""

# --- Microdisks ---------------------------------------------------------------

MICRODISK_THROUGH_LOSS_DB = 0.03
"""Microdisk pass-by loss (dB); slightly above an MR's (HolyLight [23])."""

MICRODISK_DROP_LOSS_DB = 1.0
"""Microdisk drop loss (dB)."""

MICRODISK_RADIUS_M = 5e-6
"""Microdisks are roughly half the footprint of MRs at equal FSR."""

# --- Mach-Zehnder interferometers ---------------------------------------------

MZI_INSERTION_LOSS_DB = 0.3
"""2x2 MZI insertion loss including both directional couplers (dB)."""

MZI_PHASE_SHIFTER_POWER_W = 10e-3
"""Thermo-optic phase shifter power for a pi shift (W); ~10 mW/pi."""

MZI_EXTINCTION_RATIO_DB = 30.0
"""MZI extinction ratio (dB); better than an MR's, per Section II."""

# --- Photodetectors ------------------------------------------------------------

PD_RESPONSIVITY_A_PER_W = 1.1
"""Ge-on-Si photodetector responsivity (A/W) at 1550 nm."""

PD_SENSITIVITY_DBM = -20.0
"""Minimum detectable optical power for BER 1e-9 at ~12 Gb/s OOK (dBm);
PROWAVES [11] uses -20 dBm receivers."""

PD_DARK_CURRENT_A = 1e-7
"""Dark current (A)."""

PD_BANDWIDTH_HZ = 20e9
"""3-dB opto-electrical bandwidth (Hz); comfortably covers 12 Gb/s."""

PD_TIA_POWER_W = 1.2e-3
"""Receiver (PD + transimpedance amplifier) static power per wavelength
(W); ~1.2 mW is a standard 10-12 Gb/s figure."""

# --- Lasers ---------------------------------------------------------------------

LASER_WALL_PLUG_EFFICIENCY = 0.10
"""Off-chip comb/DFB laser wall-plug efficiency; 10% follows PROWAVES [11]."""

ON_CHIP_LASER_WALL_PLUG_EFFICIENCY = 0.05
"""On-chip III-V laser wall-plug efficiency; lower emission efficiency but
no coupling loss (Section II)."""

LASER_MAX_OPTICAL_POWER_DBM = 20.0
"""Maximum aggregate optical power of the laser source (dBm); beyond
~100 mW per waveguide nonlinearities set in."""

# --- Modulators / drivers --------------------------------------------------------

MODULATOR_DRIVER_ENERGY_J_PER_BIT = 50e-15
"""OOK MR modulator driver energy (J/bit); ~50 fJ/bit at 12 Gb/s."""

MODULATOR_STATIC_POWER_W = 0.4e-3
"""Modulator bias static power per wavelength (W)."""

# --- Serdes / gateway electronics -------------------------------------------------

SERDES_ENERGY_J_PER_BIT = 0.4e-12
"""Gateway serializer/deserializer + clocking energy (J/bit); 0.4 pJ/bit
matches the electronic front-end assumed by ReSiPI [37]."""

GATEWAY_BUFFER_STATIC_POWER_W = 30e-3
"""Static power of a gateway's buffering, clocking and SerDes PLL (W);
a 768 Gb/s interface keeps tens of mW of clocking alive even when idle."""

# --- PCM couplers (ReSiPI) ---------------------------------------------------------

PCMC_INSERTION_LOSS_DB = 0.3
"""PCM-based directional coupler insertion loss (dB); Teo et al. [38]."""

PCMC_SWITCHING_ENERGY_J = 15e-9
"""Energy to switch a PCMC between states (J); amorphization pulse of
GST-on-Si couplers, Teo et al. [38]."""

PCMC_SWITCHING_TIME_S = 1e-6
"""PCMC reconfiguration time (s); ~1 us write pulse + settle."""

PCMC_STATIC_POWER_W = 0.0
"""PCM couplers are non-volatile: zero static hold power.  This is the
property ReSiPI exploits over pn/thermal switches."""

# --- DAC/ADC (MAC electro-optic interface, CrossLight [21]) -------------------------

DAC_ENERGY_J_PER_CONVERSION = 0.8e-12
"""Energy per DAC conversion driving a weight/activation MR (J)."""

DAC_POWER_W = 2.6e-3
"""Per-DAC power at full rate (W); 8-bit multi-GS/s DAC figure."""

ADC_ENERGY_J_PER_CONVERSION = 1.6e-12
"""Energy per ADC conversion at a MAC unit output (J)."""

ADC_POWER_W = 4.4e-3
"""Per-ADC power at full rate (W)."""
