"""Phase-change-material coupler (PCMC) model.

The PCMC (Fig. 2 of the paper; device from Teo et al. [38]) is the switch
ReSiPI uses to activate and deactivate gateways.  A GST-on-Si directional
coupler whose coupling strength depends on the PCM phase state:

* **crystalline**            -> light exits the Bar port (gateway off),
* **partially crystalline**  -> light splits between Bar and Cross,
* **amorphous**              -> light exits the Cross port (gateway on).

The split ratio in the partial state is set by the ratio of amorphous to
crystalline coupling lengths (``L_am / L_cr``).  PCM is non-volatile, so a
state costs energy only when *changed* — the property that lets ReSiPI
reconfigure gateway power delivery without a standing power draw,
unlike pn-junction or thermal switches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from . import constants


class PCMCState(enum.Enum):
    """Phase state of the PCM cell over the coupler."""

    CRYSTALLINE = "crystalline"
    PARTIAL = "partially_crystalline"
    AMORPHOUS = "amorphous"


@dataclass
class PCMCoupler:
    """A reconfigurable PCM-based 1x2 coupler.

    Parameters
    ----------
    state:
        Current phase state.
    partial_cross_fraction:
        Fraction of input power sent to the Cross port when in the
        PARTIAL state; set at design time by the ``L_am / L_cr`` coupling
        length ratio.
    """

    state: PCMCState = PCMCState.CRYSTALLINE
    partial_cross_fraction: float = 0.5
    insertion_loss_db: float = constants.PCMC_INSERTION_LOSS_DB
    switching_energy_j: float = constants.PCMC_SWITCHING_ENERGY_J
    switching_time_s: float = constants.PCMC_SWITCHING_TIME_S
    static_power_w: float = constants.PCMC_STATIC_POWER_W
    switch_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.partial_cross_fraction <= 1.0:
            raise ConfigurationError(
                "partial cross fraction must be in [0, 1], got "
                f"{self.partial_cross_fraction!r}"
            )
        if self.insertion_loss_db < 0:
            raise ConfigurationError("insertion loss must be non-negative")

    @property
    def _transmission(self) -> float:
        """Linear insertion transmission of the coupler."""
        return 10.0 ** (-self.insertion_loss_db / 10.0)

    @property
    def cross_fraction(self) -> float:
        """Fraction of input power delivered to the Cross port (gateway)."""
        if self.state is PCMCState.CRYSTALLINE:
            ideal = 0.0
        elif self.state is PCMCState.AMORPHOUS:
            ideal = 1.0
        else:
            ideal = self.partial_cross_fraction
        return self._transmission * ideal

    @property
    def bar_fraction(self) -> float:
        """Fraction of input power continuing on the Bar port."""
        if self.state is PCMCState.CRYSTALLINE:
            ideal = 1.0
        elif self.state is PCMCState.AMORPHOUS:
            ideal = 0.0
        else:
            ideal = 1.0 - self.partial_cross_fraction
        return self._transmission * ideal

    @property
    def is_gateway_active(self) -> bool:
        """Whether any light reaches the attached gateway."""
        return self.state is not PCMCState.CRYSTALLINE

    def switch_to(self, new_state: PCMCState) -> tuple[float, float]:
        """Change phase state; returns ``(energy_j, time_s)`` of the write.

        Writing the same state is free (non-volatile retention).
        """
        if new_state is self.state:
            return (0.0, 0.0)
        self.state = new_state
        self.switch_count += 1
        return (self.switching_energy_j, self.switching_time_s)

    def activate(self) -> tuple[float, float]:
        """Route all light to the gateway (amorphous state)."""
        return self.switch_to(PCMCState.AMORPHOUS)

    def deactivate(self) -> tuple[float, float]:
        """Bypass the gateway entirely (crystalline state)."""
        return self.switch_to(PCMCState.CRYSTALLINE)


def coupling_length_ratio_for_fraction(cross_fraction: float) -> float:
    """Design helper: ``L_am / L_cr`` ratio for a partial-state split.

    The paper notes the input power delivered to a writer gateway is
    adjusted "by tuning the ratio of L_am to L_cr".  In the two-state
    interpolation model of [38] the delivered fraction is proportional to
    the amorphous share of the coupling region, so the ratio follows
    directly:  ``r / (1 + r) = cross_fraction``.
    """
    if not 0.0 <= cross_fraction < 1.0:
        raise ConfigurationError(
            f"cross fraction must be in [0, 1), got {cross_fraction!r}"
        )
    return cross_fraction / (1.0 - cross_fraction)
