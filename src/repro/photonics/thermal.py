"""Thermal co-modelling of photonic chiplets.

Ring resonances drift with temperature (~0.08 nm/K for SOI rings), and a
chiplet's own power dissipation heats its rings — so compute power and
trimming power are coupled.  This module closes that loop with a simple
steady-state model:

1. chiplet power -> temperature rise (power density x thermal
   resistance),
2. temperature rise -> resonance drift,
3. drift -> additional thermal trimming power (which itself heats the
   die — iterated to a fixed point).

The fixed-point iteration is the standard methodology for photonic
accelerator power closure, and it converges fast because trimming power
is a small fraction of total power.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from . import constants

RING_DRIFT_NM_PER_K = 0.08
"""SOI microring resonance drift per kelvin."""

CHIPLET_THERMAL_RESISTANCE_K_PER_W = 0.45
"""Junction-to-ambient thermal resistance of an interposer-mounted
chiplet with a shared heat spreader (K/W)."""

AMBIENT_MARGIN_K = 10.0
"""Guard band above ambient assumed already trimmed out at calibration."""


@dataclass(frozen=True)
class ThermalOperatingPoint:
    """Converged thermal state of one chiplet."""

    base_power_w: float
    temperature_rise_k: float
    resonance_drift_nm: float
    thermal_trimming_power_w: float
    iterations: int

    @property
    def total_power_w(self) -> float:
        return self.base_power_w + self.thermal_trimming_power_w


def thermal_operating_point(
    base_power_w: float,
    n_rings: int,
    thermal_resistance_k_per_w: float = CHIPLET_THERMAL_RESISTANCE_K_PER_W,
    drift_nm_per_k: float = RING_DRIFT_NM_PER_K,
    max_iterations: int = 50,
    tolerance_w: float = 1e-4,
) -> ThermalOperatingPoint:
    """Fixed-point thermal closure for one chiplet.

    Rings are assumed athermalised to the calibration temperature; drift
    beyond :data:`AMBIENT_MARGIN_K` must be actively trimmed out, and
    EO-assisted trimming (the chiplets' mechanism) pays
    ``MR_EO_TUNING_POWER_W_PER_NM`` per ring per nm.
    """
    if base_power_w < 0:
        raise ConfigurationError("base power must be >= 0")
    if n_rings < 0:
        raise ConfigurationError("ring count must be >= 0")
    if thermal_resistance_k_per_w <= 0:
        raise ConfigurationError("thermal resistance must be positive")

    trimming_w = 0.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        total = base_power_w + trimming_w
        rise_k = total * thermal_resistance_k_per_w
        excess_k = max(0.0, rise_k - AMBIENT_MARGIN_K)
        drift_nm = excess_k * drift_nm_per_k
        new_trimming = (
            n_rings * constants.MR_EO_TUNING_POWER_W_PER_NM * drift_nm
        )
        if abs(new_trimming - trimming_w) < tolerance_w:
            trimming_w = new_trimming
            break
        trimming_w = new_trimming

    total = base_power_w + trimming_w
    rise_k = total * thermal_resistance_k_per_w
    return ThermalOperatingPoint(
        base_power_w=base_power_w,
        temperature_rise_k=rise_k,
        resonance_drift_nm=max(0.0, rise_k - AMBIENT_MARGIN_K)
        * drift_nm_per_k,
        thermal_trimming_power_w=trimming_w,
        iterations=iterations,
    )


def thermal_runaway_limit_w(
    n_rings: int,
    thermal_resistance_k_per_w: float = CHIPLET_THERMAL_RESISTANCE_K_PER_W,
    drift_nm_per_k: float = RING_DRIFT_NM_PER_K,
) -> float:
    """Base power above which trimming feedback diverges.

    The fixed point ``t = a*(P + t) + b`` diverges when the loop gain
    ``a = n_rings * k_trim * drift * R_th`` reaches 1; the runaway limit
    is where total power would grow without bound.  Packaging must keep
    each die's power well below this.
    """
    loop_gain = (
        n_rings
        * constants.MR_EO_TUNING_POWER_W_PER_NM
        * drift_nm_per_k
        * thermal_resistance_k_per_w
    )
    if loop_gain >= 1.0:
        return 0.0
    # At the limit, the *effective* series sum P/(1-g) stays finite for
    # any P; practical limit: keep the trimming share below 50%.
    return (1.0 - loop_gain) / loop_gain * AMBIENT_MARGIN_K / (
        thermal_resistance_k_per_w
    )
