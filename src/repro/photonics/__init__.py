"""Silicon-photonic device library.

Analytical models of every photonic device the architecture uses
(Section II of the paper): waveguides, microring and microdisk
resonators, Mach-Zehnder interferometers, photodetectors, lasers,
fiber couplers, power splitters, phase-change-material couplers, WDM
grids, and an end-to-end link-budget solver.
"""

from .coupler import CouplerKind, FiberCoupler, PowerSplitter
from .laser import LaserSource
from .link_budget import DEFAULT_SYSTEM_MARGIN_DB, LinkBudget, LossElement
from .microdisk import MicrodiskResonator
from .microring import MicroringResonator, TuningMechanism
from .mzi import MachZehnderInterferometer
from .modulation import (
    OOK,
    PAM4,
    ModulationScheme,
    ModulationSpec,
    Pam4Tradeoff,
    operating_point,
    pam4_tradeoff,
    required_q_factor,
)
from .pcmc import PCMCoupler, PCMCState, coupling_length_ratio_for_fraction
from .photodetector import Photodetector
from .signal_integrity import (
    SignalReport,
    interposer_filter_ring,
    interposer_grid,
    link_signal_report,
    max_wavelengths_for_ber,
)
from .thermal import (
    ThermalOperatingPoint,
    thermal_operating_point,
    thermal_runaway_limit_w,
)
from .variations import (
    TrimmingReport,
    VariationModel,
    platform_trimming_power_w,
    trimming_report,
)
from .waveguide import Waveguide
from .wdm import WDMGrid, max_channels_for_crosstalk

__all__ = [
    "CouplerKind",
    "FiberCoupler",
    "PowerSplitter",
    "LaserSource",
    "DEFAULT_SYSTEM_MARGIN_DB",
    "LinkBudget",
    "LossElement",
    "MicrodiskResonator",
    "MicroringResonator",
    "TuningMechanism",
    "MachZehnderInterferometer",
    "OOK",
    "PAM4",
    "ModulationScheme",
    "ModulationSpec",
    "Pam4Tradeoff",
    "operating_point",
    "pam4_tradeoff",
    "required_q_factor",
    "ThermalOperatingPoint",
    "thermal_operating_point",
    "thermal_runaway_limit_w",
    "PCMCoupler",
    "PCMCState",
    "coupling_length_ratio_for_fraction",
    "Photodetector",
    "SignalReport",
    "interposer_filter_ring",
    "interposer_grid",
    "link_signal_report",
    "max_wavelengths_for_ber",
    "TrimmingReport",
    "VariationModel",
    "platform_trimming_power_w",
    "trimming_report",
    "Waveguide",
    "WDMGrid",
    "max_channels_for_crosstalk",
]
