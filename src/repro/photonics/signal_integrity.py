"""Signal-integrity analysis: crosstalk, SNR and BER of WDM links.

Section II notes that a PD needs sufficient optical power for its
responsivity, and the paper's group has shown that inter-channel
crosstalk bounds the usable comb size in high-radix photonic networks
(crosstalk mitigation, [41]).  This module quantifies those effects for
the interposer links:

* **Crosstalk accumulation** — every ring filter a carrier passes leaks
  a Lorentzian tail of its neighbours onto it; the leaked power adds up
  along the path and acts as noise at the PD.
* **OOK BER** — the Q-factor/BER of on-off keying given signal and
  crosstalk + receiver noise currents.
* **Comb sizing** — the largest wavelength count that meets a BER floor
  on the worst-case interposer path *and* fits inside one filter FSR.

A notable physical finding (see ``tests/test_signal_integrity.py`` and
``benchmarks/bench_signal_integrity.py``): with plain first-order
add-drop rings, 64 wavelengths do NOT survive the interposer's
multi-ring paths — Table 1's comb requires second-order (cascaded-ring,
flat-top) gateway filters and small-radius rings whose FSR spans the
comb.  Those are the defaults of :func:`interposer_filter_ring`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .link_budget import LinkBudget
from .microring import MicroringResonator
from .photodetector import Photodetector
from .wdm import WDMGrid

RECEIVER_NOISE_CURRENT_A = 0.7e-6
"""RMS input-referred receiver (TIA + shot + thermal) noise current (A)
at ~12 Gb/s, consistent with the -20 dBm @ BER 1e-12 sensitivity of the
default photodetector."""

INTERPOSER_CHANNEL_SPACING_HZ = 50e9
"""DWDM spacing of the 64-wavelength interposer comb (Hz).  64 channels
at 50 GHz span ~25 nm, which fits one small-ring FSR; at the looser
100 GHz grid they would alias across filter FSRs."""


def interposer_filter_ring() -> MicroringResonator:
    """The gateway MRG filter ring design the 64-wavelength comb needs.

    Radius 3.2 um pushes the FSR to ~28 nm (> the 25 nm comb span);
    loaded Q of 10k balances drop-port loss against adjacent-channel
    leakage at 50 GHz spacing.
    """
    return MicroringResonator(radius_m=3.2e-6, quality_factor=10_000.0)


def interposer_grid(n_channels: int) -> WDMGrid:
    """The interposer DWDM comb at the 50 GHz interposer spacing."""
    return WDMGrid(
        n_channels=n_channels,
        channel_spacing_hz=INTERPOSER_CHANNEL_SPACING_HZ,
    )


@dataclass(frozen=True)
class SignalReport:
    """Signal quality at one link's photodetector."""

    received_signal_w: float
    crosstalk_w: float
    q_factor: float
    ber: float
    snr_db: float

    @property
    def meets_1e12(self) -> bool:
        """Whether the link runs error-free for practical purposes."""
        return self.ber <= 1e-12


def crosstalk_fraction_per_ring(
    ring: MicroringResonator,
    grid: WDMGrid,
    filter_order: int = 1,
) -> float:
    """Fraction of neighbouring-channel power leaked by one filter stage.

    Sums the Lorentzian tails of both adjacent channels at the filter's
    resonance, with a 1.25 safety factor folding in the next-nearest
    channels.  ``filter_order`` models cascaded-ring (flat-top) filters:
    an order-N add-drop suppresses out-of-band light N times over.
    """
    if filter_order < 1:
        raise ConfigurationError("filter order must be >= 1")
    if grid.n_channels < 2:
        return 0.0
    spacing = grid.adjacent_spacing_m
    single_neighbour = ring.drop_transmission(
        ring.resonance_wavelength_m + spacing
    ) / ring.drop_transmission(ring.resonance_wavelength_m)
    return 2.0 * 1.25 * single_neighbour ** filter_order


def link_signal_report(
    budget: LinkBudget,
    grid: WDMGrid,
    ring: MicroringResonator | None = None,
    detector: Photodetector | None = None,
    n_rings_passed: int = 1,
    filter_order: int = 2,
    launch_power_w: float | None = None,
) -> SignalReport:
    """Signal quality of a WDM link through ``n_rings_passed`` filters.

    ``launch_power_w`` defaults to the budget-solved power (PD
    sensitivity exactly met) — the worst case the architecture is
    provisioned for.  ``filter_order`` defaults to the second-order
    gateway filters the interposer requires (module docstring).
    """
    ring = ring or interposer_filter_ring()
    detector = detector or Photodetector()
    if n_rings_passed < 1:
        raise ConfigurationError("a link passes at least one ring")

    launch = launch_power_w or budget.required_on_chip_power_w(detector)
    received = launch * budget.transmission

    # Crosstalk accumulates once per filter traversal; neighbours run at
    # the same launch power and suffer (approximately) the same loss.
    per_ring = crosstalk_fraction_per_ring(ring, grid, filter_order)
    crosstalk = received * per_ring * n_rings_passed

    signal_current = detector.responsivity_a_per_w * received
    noise_current = math.sqrt(
        RECEIVER_NOISE_CURRENT_A ** 2
        + (detector.responsivity_a_per_w * crosstalk) ** 2
    )
    # OOK Q-factor: eye opening between the 1 and 0 rails over the
    # summed rail noise (the 0 rail carries crosstalk + receiver noise).
    q_factor = signal_current / (2.0 * noise_current)
    ber = 0.5 * math.erfc(q_factor / math.sqrt(2.0))
    snr_db = 20.0 * math.log10(q_factor) if q_factor > 0 else -math.inf
    return SignalReport(
        received_signal_w=received,
        crosstalk_w=crosstalk,
        q_factor=q_factor,
        ber=ber,
        snr_db=snr_db,
    )


def max_wavelengths_for_ber(
    budget: LinkBudget,
    ring: MicroringResonator | None = None,
    detector: Photodetector | None = None,
    n_rings_passed: int = 8,
    filter_order: int = 2,
    ber_floor: float = 1e-12,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 96, 128),
) -> int:
    """Largest comb (from ``candidates``) meeting the BER floor.

    Also enforces the FSR-aliasing constraint: the comb must fit inside
    one filter FSR so every MRG row addresses unique channels.
    """
    ring = ring or interposer_filter_ring()
    best = 1
    for n_channels in candidates:
        grid = interposer_grid(n_channels)
        if n_channels > 1 and not grid.fits_in_fsr(ring):
            continue
        report = link_signal_report(
            budget, grid, ring, detector, n_rings_passed, filter_order
        )
        if report.ber <= ber_floor:
            best = max(best, n_channels)
    return best
