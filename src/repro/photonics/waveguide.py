"""Silicon-on-insulator waveguide model.

A waveguide is characterised by its routed length and the discrete
features along it (90-degree bends, crossings with other waveguides).  It
contributes propagation delay (set by the group index) and insertion loss
to a photonic link budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import SPEED_OF_LIGHT
from . import constants


@dataclass(frozen=True)
class Waveguide:
    """A routed SOI waveguide segment.

    Parameters
    ----------
    length_m:
        Routed length in meters.
    n_bends:
        Number of 90-degree bends along the route.
    n_crossings:
        Number of crossings with other waveguides.
    propagation_loss_db_per_cm:
        Propagation loss (dB/cm).
    group_index:
        Group index; sets the propagation velocity of modulated light.
    """

    length_m: float
    n_bends: int = 0
    n_crossings: int = 0
    propagation_loss_db_per_cm: float = (
        constants.WAVEGUIDE_PROPAGATION_LOSS_DB_PER_CM
    )
    bend_loss_db: float = constants.WAVEGUIDE_BEND_LOSS_DB
    crossing_loss_db: float = constants.WAVEGUIDE_CROSSING_LOSS_DB
    group_index: float = field(default=constants.GROUP_INDEX_SOI)

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ConfigurationError(
                f"waveguide length must be non-negative, got {self.length_m}"
            )
        if self.n_bends < 0 or self.n_crossings < 0:
            raise ConfigurationError("bend/crossing counts must be non-negative")
        if self.group_index < 1.0:
            raise ConfigurationError(
                f"group index below 1 is unphysical: {self.group_index}"
            )

    @property
    def propagation_loss_db(self) -> float:
        """Distributed propagation loss over the full length (dB)."""
        return self.propagation_loss_db_per_cm * (self.length_m * 100.0)

    @property
    def insertion_loss_db(self) -> float:
        """Total insertion loss: propagation + bends + crossings (dB)."""
        return (
            self.propagation_loss_db
            + self.n_bends * self.bend_loss_db
            + self.n_crossings * self.crossing_loss_db
        )

    @property
    def propagation_delay_s(self) -> float:
        """Time for light to traverse the waveguide (s)."""
        return self.length_m * self.group_index / SPEED_OF_LIGHT

    def extended(self, extra_length_m: float, extra_bends: int = 0,
                 extra_crossings: int = 0) -> "Waveguide":
        """Return a new waveguide with additional routed length/features."""
        return Waveguide(
            length_m=self.length_m + extra_length_m,
            n_bends=self.n_bends + extra_bends,
            n_crossings=self.n_crossings + extra_crossings,
            propagation_loss_db_per_cm=self.propagation_loss_db_per_cm,
            bend_loss_db=self.bend_loss_db,
            crossing_loss_db=self.crossing_loss_db,
            group_index=self.group_index,
        )
