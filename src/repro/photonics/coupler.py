"""Chip-coupling and power-splitting passives.

Couplers move light between fibers and on-chip waveguides (Section II);
splitters fan a carrier out to multiple destinations.  Both are loss
elements in the link budget.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from . import constants


class CouplerKind(enum.Enum):
    """Fiber-to-chip coupling technologies (Nambiar et al. [33])."""

    GRATING = "grating"
    EDGE = "edge"


@dataclass(frozen=True)
class FiberCoupler:
    """A fiber-to-chip coupler of a given technology."""

    kind: CouplerKind = CouplerKind.GRATING
    insertion_loss_db: float | None = None

    def __post_init__(self) -> None:
        if self.insertion_loss_db is None:
            default = {
                CouplerKind.GRATING: constants.GRATING_COUPLER_LOSS_DB,
                CouplerKind.EDGE: constants.EDGE_COUPLER_LOSS_DB,
            }[self.kind]
            object.__setattr__(self, "insertion_loss_db", default)
        if self.insertion_loss_db < 0:
            raise ConfigurationError("insertion loss must be non-negative")

    @property
    def transmission(self) -> float:
        """Linear power transmission through the coupler."""
        return 10.0 ** (-self.insertion_loss_db / 10.0)


@dataclass(frozen=True)
class PowerSplitter:
    """A passive 1-to-N optical power splitter (tree of Y-branches).

    A 1:N split costs ``10*log10(N)`` dB of intrinsic division plus an
    excess insertion loss per Y-branch stage.  Passive splitters cannot be
    turned off — the limitation that motivates ReSiPI's PCM couplers
    (Section IV).
    """

    fanout: int
    excess_loss_per_stage_db: float = constants.SPLITTER_INSERTION_LOSS_DB

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {self.fanout}")
        if self.excess_loss_per_stage_db < 0:
            raise ConfigurationError("excess loss must be non-negative")

    @property
    def n_stages(self) -> int:
        """Depth of the binary splitter tree."""
        if self.fanout == 1:
            return 0
        return math.ceil(math.log2(self.fanout))

    @property
    def intrinsic_split_loss_db(self) -> float:
        """Unavoidable power-division loss per output branch (dB)."""
        return 10.0 * math.log10(self.fanout)

    @property
    def insertion_loss_db(self) -> float:
        """Total per-branch loss: division + excess (dB)."""
        return (
            self.intrinsic_split_loss_db
            + self.n_stages * self.excess_loss_per_stage_db
        )

    @property
    def per_branch_transmission(self) -> float:
        """Linear fraction of input power arriving at each output."""
        return 10.0 ** (-self.insertion_loss_db / 10.0)
