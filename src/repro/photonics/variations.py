"""Fabrication-variation modelling for microring banks.

CrossLight's [21] cross-layer design devotes significant attention to
process variation: fabricated rings resonate away from their design
wavelength and must be trimmed back, and the trimming power is a large,
workload-independent chunk of a photonic accelerator's budget.  This
module models:

* per-ring resonance deviation as the sum of a die-level (systematic)
  and a ring-level (random) Gaussian component,
* the trimming power a bank of rings needs, per mechanism (thermal
  trimming heats rings; carrier-injection EO trimming blue-shifts),
* trimming *yield*: the fraction of rings whose deviation exceeds the
  trimmable range and would need FSR-hopping (locking to the adjacent
  resonance) — the mitigation CrossLight adopts.

Sampling is deterministic given a seed, so power numbers and tests are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from . import constants
from .microring import MicroringResonator, TuningMechanism

WITHIN_DIE_SIGMA_NM = 0.25
"""Random within-die resonance deviation (1-sigma, nm); typical foundry
SOI figure after lithography smoothing."""

DIE_TO_DIE_SIGMA_NM = 0.45
"""Systematic die-level resonance offset (1-sigma, nm)."""


@dataclass(frozen=True)
class VariationModel:
    """Gaussian process-variation model for ring resonances."""

    within_die_sigma_nm: float = WITHIN_DIE_SIGMA_NM
    die_sigma_nm: float = DIE_TO_DIE_SIGMA_NM
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.within_die_sigma_nm < 0 or self.die_sigma_nm < 0:
            raise ConfigurationError("variation sigmas must be >= 0")

    def sample_deviations_nm(self, n_rings: int,
                             die_index: int = 0) -> np.ndarray:
        """Resonance deviations (nm) for ``n_rings`` rings on one die.

        Deterministic per ``(seed, die_index)``; the die offset is shared
        by all rings of the die, the within-die part is per ring.
        """
        if n_rings < 1:
            raise ConfigurationError("need at least one ring")
        rng = np.random.default_rng((self.seed, die_index))
        die_offset = rng.normal(0.0, self.die_sigma_nm)
        ring_offsets = rng.normal(0.0, self.within_die_sigma_nm, n_rings)
        return die_offset + ring_offsets


@dataclass(frozen=True)
class TrimmingReport:
    """Trimming cost of one ring bank under variation."""

    n_rings: int
    mechanism: TuningMechanism
    total_power_w: float
    mean_shift_nm: float
    max_shift_nm: float
    fsr_hop_fraction: float

    @property
    def power_per_ring_w(self) -> float:
        return self.total_power_w / self.n_rings


def trimming_report(
    n_rings: int,
    mechanism: TuningMechanism = TuningMechanism.THERMO_OPTIC,
    model: VariationModel | None = None,
    ring: MicroringResonator | None = None,
    die_index: int = 0,
    trim_range_nm: float = 1.0,
) -> TrimmingReport:
    """Trimming power for a bank of ``n_rings`` rings on one die.

    Thermal trimming can only red-shift, so a ring is trimmed *forward*
    to its target: deviations are corrected modulo the trimming
    direction, and rings whose correction exceeds ``trim_range_nm`` lock
    to the next FSR instead (counted in ``fsr_hop_fraction``; their trim
    cost is the residual after the hop).
    """
    if trim_range_nm <= 0:
        raise ConfigurationError("trim range must be positive")
    model = model or VariationModel()
    ring = ring or MicroringResonator(tuning=mechanism)
    deviations = model.sample_deviations_nm(n_rings, die_index)

    fsr_nm = ring.free_spectral_range_m * 1e9
    # Thermal trimming red-shifts only: a ring sitting above its target
    # must walk forward a full FSR minus its deviation.
    forward_shift = np.where(deviations < 0, -deviations,
                             fsr_nm - deviations)
    hops = forward_shift > trim_range_nm
    # FSR-hopping mitigation: lock to whichever resonance is nearest
    # within range; model the post-hop residual as the within-die sigma.
    effective_shift = np.where(hops, model.within_die_sigma_nm,
                               forward_shift)

    power_per_nm = (
        constants.MR_TO_TUNING_POWER_W_PER_NM
        if mechanism is TuningMechanism.THERMO_OPTIC
        else constants.MR_EO_TUNING_POWER_W_PER_NM
    )
    total_power = float(np.sum(effective_shift) * power_per_nm)
    return TrimmingReport(
        n_rings=n_rings,
        mechanism=mechanism,
        total_power_w=total_power,
        mean_shift_nm=float(np.mean(effective_shift)),
        max_shift_nm=float(np.max(effective_shift)),
        fsr_hop_fraction=float(np.mean(hops)),
    )


def platform_trimming_power_w(
    ring_counts_per_die: dict[str, int],
    mechanism: TuningMechanism = TuningMechanism.THERMO_OPTIC,
    model: VariationModel | None = None,
    trim_range_nm: float = 1.0,
) -> dict[str, float]:
    """Trimming power per die of a multi-chiplet platform (W).

    Each die gets an independent systematic offset — the 2.5D advantage:
    small dies see only their own die offset, while a monolithic die's
    rings share one (possibly bad) offset across the whole reticle.
    """
    model = model or VariationModel()
    result = {}
    for die_index, (die_name, n_rings) in enumerate(
        sorted(ring_counts_per_die.items())
    ):
        report = trimming_report(
            n_rings, mechanism, model, die_index=die_index,
            trim_range_nm=trim_range_nm,
        )
        result[die_name] = report.total_power_w
    return result
