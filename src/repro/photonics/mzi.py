"""Mach-Zehnder interferometer (MZI) model.

MZIs (Section II) are 2x2 devices built from two 3-dB directional
couplers and two arms carrying phase shifters.  Coherent accelerators
weight signals with them; in this architecture they appear as broadband
switches and as a comparison point against MRs (better thermal stability
and extinction ratio, larger footprint and power).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from . import constants


@dataclass(frozen=True)
class MachZehnderInterferometer:
    """A 2x2 MZI with thermo-optic phase shifters on its arms.

    The power splitting between the two output ports follows the phase
    difference ``delta_phi`` between the arms:

    * bar port:   sin^2(delta_phi / 2)
    * cross port: cos^2(delta_phi / 2)

    A finite extinction ratio bounds how completely either port can be
    turned off.
    """

    insertion_loss_db: float = constants.MZI_INSERTION_LOSS_DB
    phase_shifter_power_w_per_pi: float = constants.MZI_PHASE_SHIFTER_POWER_W
    extinction_ratio_db: float = constants.MZI_EXTINCTION_RATIO_DB

    def __post_init__(self) -> None:
        if self.extinction_ratio_db <= 0:
            raise ConfigurationError("extinction ratio must be positive dB")

    @property
    def _leakage(self) -> float:
        """Minimum normalised power at a nominally dark port."""
        return 10.0 ** (-self.extinction_ratio_db / 10.0)

    @property
    def _transmission(self) -> float:
        """Linear insertion transmission through the device."""
        return 10.0 ** (-self.insertion_loss_db / 10.0)

    def bar_transmission(self, delta_phi_rad: float) -> float:
        """Fraction of input power at the bar port for a phase difference."""
        ideal = math.sin(delta_phi_rad / 2.0) ** 2
        clamped = min(max(ideal, self._leakage), 1.0 - self._leakage)
        return self._transmission * clamped

    def cross_transmission(self, delta_phi_rad: float) -> float:
        """Fraction of input power at the cross port for a phase difference."""
        ideal = math.cos(delta_phi_rad / 2.0) ** 2
        clamped = min(max(ideal, self._leakage), 1.0 - self._leakage)
        return self._transmission * clamped

    def phase_for_weight(self, weight: float) -> float:
        """Arm phase difference (rad) that puts ``weight`` on the bar port.

        Used by coherent weighting: electrical-field attenuation
        proportional to the weight magnitude (Section III).
        """
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError(f"weight must be in [0, 1], got {weight!r}")
        effective = min(max(weight, self._leakage), 1.0 - self._leakage)
        return 2.0 * math.asin(math.sqrt(effective))

    def phase_shifter_power_w(self, delta_phi_rad: float) -> float:
        """Thermo-optic power to hold a phase difference (W)."""
        return self.phase_shifter_power_w_per_pi * abs(delta_phi_rad) / math.pi

    def switching_power_w(self, weight: float) -> float:
        """Power to hold the device at a given bar-port weight (W)."""
        return self.phase_shifter_power_w(self.phase_for_weight(weight))
