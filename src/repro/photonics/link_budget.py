"""Photonic link-budget solver.

Answers the question at the heart of the photonic power model: *how much
laser power does a link need so that every receiver still sees the
photodetector sensitivity after all losses?*

A link is described as an ordered chain of named loss contributions
(coupler, PCMC, splitter, modulator, waveguide, ring pass-bys, filter
drop).  The solver sums them, adds a system margin, and works back through
the laser's coupling loss and wall-plug efficiency to an electrical power.
This mirrors the power model of PROWAVES [11] / ReSiPI [37] that the paper
says it adopts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ConfigurationError, LinkBudgetError
from ..units import dbm_to_watts, watts_to_dbm
from .laser import LaserSource
from .photodetector import Photodetector

DEFAULT_SYSTEM_MARGIN_DB = 1.0
"""Safety margin added on top of the summed losses (dB)."""


@dataclass(frozen=True)
class LossElement:
    """One named contribution to a link's insertion loss."""

    name: str
    loss_db: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.loss_db < 0:
            raise ConfigurationError(
                f"loss element {self.name!r} has negative loss {self.loss_db}"
            )
        if self.count < 0:
            raise ConfigurationError(
                f"loss element {self.name!r} has negative count {self.count}"
            )

    @property
    def total_db(self) -> float:
        """Aggregate loss of all instances of this element (dB)."""
        return self.loss_db * self.count


@dataclass
class LinkBudget:
    """Loss accounting for one photonic path, laser to photodetector.

    Build it incrementally with :meth:`add`, then query
    :meth:`required_laser_power_w` for the per-wavelength optical power
    the source must deliver on-chip.
    """

    elements: list[LossElement] = field(default_factory=list)
    margin_db: float = DEFAULT_SYSTEM_MARGIN_DB

    def add(self, name: str, loss_db: float, count: int = 1) -> "LinkBudget":
        """Append a loss contribution; returns self for chaining."""
        self.elements.append(LossElement(name, loss_db, count))
        return self

    def extend(self, elements: Iterable[LossElement]) -> "LinkBudget":
        """Append several prepared loss elements."""
        self.elements.extend(elements)
        return self

    @property
    def total_loss_db(self) -> float:
        """Sum of all losses plus the system margin (dB)."""
        return sum(element.total_db for element in self.elements) + self.margin_db

    @property
    def transmission(self) -> float:
        """Linear end-to-end power transmission of the path."""
        return 10.0 ** (-self.total_loss_db / 10.0)

    def breakdown(self) -> dict[str, float]:
        """Per-element loss in dB, keyed by element name (merged)."""
        result: dict[str, float] = {}
        for element in self.elements:
            result[element.name] = result.get(element.name, 0.0) + element.total_db
        result["margin"] = self.margin_db
        return result

    # -- solving ---------------------------------------------------------------

    def required_on_chip_power_w(self, detector: Photodetector) -> float:
        """Per-wavelength on-chip laser power so the PD sees sensitivity (W)."""
        required_dbm = detector.sensitivity_dbm + self.total_loss_db
        return dbm_to_watts(required_dbm)

    def required_laser_electrical_power_w(
        self,
        laser: LaserSource,
        detector: Photodetector,
        n_wavelengths: int = 1,
    ) -> float:
        """Electrical power of the laser feeding this link (W).

        ``n_wavelengths`` identical carriers share the path (each must
        independently meet sensitivity, so power scales linearly).
        Raises :class:`LinkBudgetError` if the laser cannot close the link.
        """
        if n_wavelengths < 1:
            raise ConfigurationError("need at least one wavelength")
        per_lambda = self.required_on_chip_power_w(detector)
        total_optical = per_lambda * n_wavelengths
        try:
            return laser.electrical_power_w(total_optical)
        except LinkBudgetError as exc:
            raise LinkBudgetError(
                f"link with {self.total_loss_db:.2f} dB loss and "
                f"{n_wavelengths} wavelengths cannot close: {exc}"
            ) from exc

    def received_power_dbm(self, launched_power_w: float) -> float:
        """Power arriving at the detector for a given launch power (dBm)."""
        if launched_power_w <= 0:
            raise ConfigurationError("launched power must be positive")
        return watts_to_dbm(launched_power_w) - self.total_loss_db

    def closes(self, launched_power_w: float, detector: Photodetector) -> bool:
        """Whether a launch power closes the link at the PD sensitivity."""
        return (
            self.received_power_dbm(launched_power_w) >= detector.sensitivity_dbm
        )
