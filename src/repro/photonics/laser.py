"""Laser source models.

Lasers provide the optical carriers for both communication and computation
(Section II).  Off-chip lasers (the architecture's choice) have better
wall-plug efficiency but pay a fiber-to-chip coupling loss; on-chip lasers
integrate densely but emit less efficiently.

The laser model answers two questions for the power model:

* electrical power drawn to emit a required optical power, and
* whether the requested optical power is within the source's range.

Per-wavelength gating is what PROWAVES [11] exploits, and whole-gateway
gating is what ReSiPI [37] exploits; :meth:`LaserSource.electrical_power_w`
therefore takes the *currently required* optical power, which controllers
recompute per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, LinkBudgetError
from ..units import dbm_to_watts
from . import constants


@dataclass(frozen=True)
class LaserSource:
    """An optical power source feeding one or more waveguides.

    Parameters
    ----------
    wall_plug_efficiency:
        Optical watts emitted per electrical watt consumed.
    coupling_loss_db:
        Loss incurred coupling into the on-chip waveguide (0 for on-chip
        lasers; grating/edge coupler loss for off-chip lasers).
    max_optical_power_w:
        Maximum optical power the source can emit.
    """

    wall_plug_efficiency: float = constants.LASER_WALL_PLUG_EFFICIENCY
    coupling_loss_db: float = constants.GRATING_COUPLER_LOSS_DB
    max_optical_power_w: float = dbm_to_watts(
        constants.LASER_MAX_OPTICAL_POWER_DBM
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.wall_plug_efficiency <= 1.0:
            raise ConfigurationError(
                "wall-plug efficiency must be in (0, 1], got "
                f"{self.wall_plug_efficiency!r}"
            )
        if self.coupling_loss_db < 0:
            raise ConfigurationError("coupling loss must be non-negative")

    @classmethod
    def off_chip(cls) -> "LaserSource":
        """Standard off-chip laser coupled through a grating coupler."""
        return cls(
            wall_plug_efficiency=constants.LASER_WALL_PLUG_EFFICIENCY,
            coupling_loss_db=constants.GRATING_COUPLER_LOSS_DB,
        )

    @classmethod
    def on_chip(cls) -> "LaserSource":
        """On-chip III-V laser: no coupling loss, lower efficiency."""
        return cls(
            wall_plug_efficiency=constants.ON_CHIP_LASER_WALL_PLUG_EFFICIENCY,
            coupling_loss_db=0.0,
        )

    @property
    def coupling_transmission(self) -> float:
        """Linear transmission of the chip-coupling interface."""
        return 10.0 ** (-self.coupling_loss_db / 10.0)

    def emitted_power_for_on_chip_w(self, on_chip_power_w: float) -> float:
        """Optical power the source must emit so that ``on_chip_power_w``
        arrives past the coupling interface (W)."""
        if on_chip_power_w < 0:
            raise ConfigurationError("optical power must be non-negative")
        required = on_chip_power_w / self.coupling_transmission
        if required > self.max_optical_power_w:
            raise LinkBudgetError(
                f"laser cannot emit {required:.3e} W "
                f"(max {self.max_optical_power_w:.3e} W)"
            )
        return required

    def electrical_power_w(self, on_chip_power_w: float) -> float:
        """Electrical power drawn to sustain an on-chip optical power (W)."""
        emitted = self.emitted_power_for_on_chip_w(on_chip_power_w)
        return emitted / self.wall_plug_efficiency
