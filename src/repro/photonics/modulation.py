"""Modulation schemes: OOK and PAM-4 signalling.

Section II: "In advanced modulation schemes such as 4 pulse amplitude
modulation (PAM-4) [44], MRs can be used to modulate signal amplitude on
four distinct levels."  PAM-4 doubles the bits per symbol at the same
symbol rate, but the eye openings shrink to a third of the OOK eye, so
the receiver needs ~4.8 dB more *optical* power (a factor of 3) for the
same BER — a classic bandwidth-vs-laser-power trade that [44] exploits
with multilevel signalling on photonic NoCs.

:func:`pam4_tradeoff` evaluates that trade on an interposer link: for a
given loss budget, does doubling the per-wavelength data rate pay for
its extra laser power in energy per bit?
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import linear_to_db
from .laser import LaserSource
from .link_budget import LinkBudget
from .photodetector import Photodetector


class ModulationScheme(enum.Enum):
    """Supported line codes."""

    OOK = "ook"
    PAM4 = "pam4"


@dataclass(frozen=True)
class ModulationSpec:
    """Physical properties of a line code."""

    scheme: ModulationScheme
    bits_per_symbol: int
    eye_fraction: float
    """Worst-case eye opening relative to the full swing (1.0 for OOK,
    1/3 for PAM-4's three stacked eyes)."""

    @property
    def power_penalty_db(self) -> float:
        """Receiver power penalty vs OOK at equal symbol rate and BER."""
        return -linear_to_db(self.eye_fraction)

    def data_rate_bps(self, symbol_rate_baud: float) -> float:
        """Line rate at a given symbol rate."""
        if symbol_rate_baud <= 0:
            raise ConfigurationError("symbol rate must be positive")
        return symbol_rate_baud * self.bits_per_symbol


OOK = ModulationSpec(ModulationScheme.OOK, bits_per_symbol=1,
                     eye_fraction=1.0)
PAM4 = ModulationSpec(ModulationScheme.PAM4, bits_per_symbol=2,
                      eye_fraction=1.0 / 3.0)

SCHEMES = {ModulationScheme.OOK: OOK, ModulationScheme.PAM4: PAM4}


@dataclass(frozen=True)
class ModulationOperatingPoint:
    """One scheme's operating point on a given link."""

    spec: ModulationSpec
    data_rate_bps: float
    laser_power_w: float
    energy_per_bit_j: float


def operating_point(
    spec: ModulationSpec,
    budget: LinkBudget,
    symbol_rate_baud: float,
    laser: LaserSource | None = None,
    detector: Photodetector | None = None,
    n_wavelengths: int = 1,
    electronics_j_per_symbol: float = 0.8e-12,
    electronics_j_per_bit: float = 0.15e-12,
) -> ModulationOperatingPoint:
    """Laser power and energy/bit of one scheme on one link.

    The scheme's power penalty is added to the link budget before
    solving for the laser.  Serialisation electronics split into a
    per-*symbol* part (clocking, driver switching — PAM-4 amortises this
    over two bits) and a small per-bit part (framing, buffering).
    """
    laser = laser or LaserSource.off_chip()
    detector = detector or Photodetector()
    penalised = LinkBudget(
        elements=list(budget.elements), margin_db=budget.margin_db
    )
    penalised.add(f"{spec.scheme.value}_penalty", spec.power_penalty_db)
    laser_w = penalised.required_laser_electrical_power_w(
        laser, detector, n_wavelengths
    )
    rate = spec.data_rate_bps(symbol_rate_baud) * n_wavelengths
    energy_per_bit = (
        laser_w / rate
        + electronics_j_per_symbol / spec.bits_per_symbol
        + electronics_j_per_bit
    )
    return ModulationOperatingPoint(
        spec=spec,
        data_rate_bps=rate,
        laser_power_w=laser_w,
        energy_per_bit_j=energy_per_bit,
    )


@dataclass(frozen=True)
class Pam4Tradeoff:
    """OOK-vs-PAM4 comparison on one link."""

    ook: ModulationOperatingPoint
    pam4: ModulationOperatingPoint

    @property
    def bandwidth_gain(self) -> float:
        return self.pam4.data_rate_bps / self.ook.data_rate_bps

    @property
    def laser_power_ratio(self) -> float:
        return self.pam4.laser_power_w / self.ook.laser_power_w

    @property
    def pam4_wins_energy(self) -> bool:
        """Whether PAM-4's rate gain beats its laser penalty per bit."""
        return self.pam4.energy_per_bit_j < self.ook.energy_per_bit_j


def pam4_tradeoff(
    budget: LinkBudget,
    symbol_rate_baud: float = 12e9,
    n_wavelengths: int = 64,
) -> Pam4Tradeoff:
    """Evaluate PAM-4 against OOK on one interposer link."""
    return Pam4Tradeoff(
        ook=operating_point(OOK, budget, symbol_rate_baud,
                            n_wavelengths=n_wavelengths),
        pam4=operating_point(PAM4, budget, symbol_rate_baud,
                             n_wavelengths=n_wavelengths),
    )


def required_q_factor(ber: float) -> float:
    """Invert the OOK BER formula: Q needed for a target BER."""
    if not 0.0 < ber < 0.5:
        raise ConfigurationError("BER must be in (0, 0.5)")
    # Bisection on 0.5*erfc(q/sqrt(2)).
    low, high = 0.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2.0
        if 0.5 * math.erfc(mid / math.sqrt(2.0)) > ber:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0
