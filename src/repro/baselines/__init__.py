"""Analytic models of Table 3's literature comparison platforms."""

from .platforms import (
    AMD_3970,
    DEAP_CNN,
    EDGE_TPU,
    HOLYLIGHT,
    INTEL_9282,
    LITERATURE_PLATFORMS,
    NULLHOP,
    NVIDIA_P100,
    BaselinePlatform,
)

__all__ = [
    "AMD_3970",
    "DEAP_CNN",
    "EDGE_TPU",
    "HOLYLIGHT",
    "INTEL_9282",
    "LITERATURE_PLATFORMS",
    "NULLHOP",
    "NVIDIA_P100",
    "BaselinePlatform",
]
