"""Analytic models of the literature platforms in Table 3.

The paper compares its accelerators against seven published platforms
(Nvidia P100, Intel Xeon 9282, AMD TR 3970X, Edge TPU, NullHop [42],
DEAP-CNN [43], HolyLight [23]) using *reported* numbers.  We cannot run
that hardware, so each platform is a roofline-style analytic model —
power envelope, batch-1 effective throughput, memory bandwidth, and a
per-inference dispatch overhead — with the effective throughput
calibrated so that the model reproduces the platform's reported Table 3
operating point on the same five-model workload suite.  EXPERIMENTS.md
records paper-vs-model for every row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import EnergyBreakdown, InferenceResult
from ..dnn.workload import InferenceWorkload
from ..errors import ConfigurationError


@dataclass(frozen=True)
class BaselinePlatform:
    """A fixed-function analytic platform model.

    Parameters
    ----------
    name:
        Table 3 row name.
    power_w:
        Average board/package power while running inference.
    throughput_macs_per_s:
        Effective (not peak) batch-1 MAC throughput.
    memory_bandwidth_bps:
        Parameter/activation streaming bandwidth.
    overhead_s:
        Fixed per-inference dispatch cost (kernel launch, host link).
    """

    name: str
    power_w: float
    throughput_macs_per_s: float
    memory_bandwidth_bps: float
    overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.power_w <= 0 or self.throughput_macs_per_s <= 0:
            raise ConfigurationError(
                f"{self.name}: power and throughput must be positive"
            )
        if self.memory_bandwidth_bps <= 0:
            raise ConfigurationError(
                f"{self.name}: memory bandwidth must be positive"
            )

    def latency_s(self, workload: InferenceWorkload) -> float:
        """Roofline latency: dispatch + max(compute, data movement)."""
        compute_s = workload.total_macs / self.throughput_macs_per_s
        movement_s = workload.total_traffic_bits / self.memory_bandwidth_bps
        return self.overhead_s + max(compute_s, movement_s)

    def run_workload(self, workload: InferenceWorkload) -> InferenceResult:
        """Produce an :class:`InferenceResult` comparable to the platforms
        simulated in :mod:`repro.core`."""
        latency = self.latency_s(workload)
        energy = EnergyBreakdown(
            network_static_j=0.0,
            network_dynamic_j=0.0,
            compute_static_j=self.power_w * latency,
            compute_dynamic_j=0.0,
            logic_static_j=0.0,
            detail_j={"envelope": self.power_w * latency},
        )
        return InferenceResult(
            platform=self.name,
            model=workload.model_name,
            latency_s=latency,
            energy=energy,
            traffic_bits=workload.total_traffic_bits,
            layer_timeline=(),
        )


# Calibration: effective throughputs are set so the five-model average
# latency lands on the platform's Table 3 row (total suite MACs =
# 22.46 GMAC; see tests/test_baselines.py).  Power envelopes are the
# Table 3 numbers directly.

NVIDIA_P100 = BaselinePlatform(
    name="Nvidia P100 GPU",
    power_w=250.0,
    throughput_macs_per_s=350e9,
    memory_bandwidth_bps=5.8e12,  # 732 GB/s HBM2
    overhead_s=0.2e-3,
)

INTEL_9282 = BaselinePlatform(
    name="Intel 9282 CPU",
    power_w=400.0,
    throughput_macs_per_s=52e9,
    memory_bandwidth_bps=2.26e12,  # 282 GB/s, 12-ch DDR4
    overhead_s=50e-6,
)

AMD_3970 = BaselinePlatform(
    name="AMD 3970 CPU",
    power_w=280.0,
    throughput_macs_per_s=31.8e9,
    memory_bandwidth_bps=0.75e12,  # 95 GB/s, 4-ch DDR4
    overhead_s=50e-6,
)

EDGE_TPU = BaselinePlatform(
    name="Edge TPU",
    power_w=2.0,
    throughput_macs_per_s=1.9e9,
    memory_bandwidth_bps=25.6e9,  # host-link streamed parameters
    overhead_s=3e-3,
)

NULLHOP = BaselinePlatform(
    name="Null Hop",
    power_w=2.3,
    throughput_macs_per_s=0.56e9,
    memory_bandwidth_bps=6.4e9,
    overhead_s=5e-3,
)

DEAP_CNN = BaselinePlatform(
    name="Deap_CNN",
    power_w=122.0,
    throughput_macs_per_s=7.26e9,
    memory_bandwidth_bps=0.2e12,
    overhead_s=1e-3,
)

HOLYLIGHT = BaselinePlatform(
    name="HolyLight",
    power_w=66.5,
    throughput_macs_per_s=52e9,
    memory_bandwidth_bps=0.4e12,
    overhead_s=0.5e-3,
)

LITERATURE_PLATFORMS = (
    NVIDIA_P100,
    INTEL_9282,
    AMD_3970,
    EDGE_TPU,
    NULLHOP,
    DEAP_CNN,
    HOLYLIGHT,
)
"""All Table 3 comparison platforms, in Table 3 order."""
