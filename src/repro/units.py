"""Unit constants and conversion helpers used across the library.

All internal computation uses base SI units: seconds, watts, hertz, meters,
bits.  Device datasheets and the paper quote values in engineering units
(dB, mW, GHz, Gb/s, nm, mm); the helpers here convert between the two so
that magic conversion factors never appear inline in models.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# SI prefixes (multipliers relative to the base unit).
# ---------------------------------------------------------------------------

TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15

# ---------------------------------------------------------------------------
# Physical constants.
# ---------------------------------------------------------------------------

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum (m/s)."""

PLANCK = 6.626_070_15e-34
"""Planck constant (J*s)."""

BOLTZMANN = 1.380_649e-23
"""Boltzmann constant (J/K)."""

ELEMENTARY_CHARGE = 1.602_176_634e-19
"""Elementary charge (C)."""

# ---------------------------------------------------------------------------
# Data-size units (bits are the base unit for traffic accounting).
# ---------------------------------------------------------------------------

BYTE = 8
KIB = 1024 * BYTE
MIB = 1024 * KIB
GIB = 1024 * MIB


def bits_from_bytes(n_bytes: float) -> float:
    """Return the number of bits in ``n_bytes`` bytes."""
    return n_bytes * BYTE


def bytes_from_bits(n_bits: float) -> float:
    """Return the number of bytes in ``n_bits`` bits."""
    return n_bits / BYTE


# ---------------------------------------------------------------------------
# Decibel conversions.
# ---------------------------------------------------------------------------


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio expressed in dB to a linear ratio.

    >>> db_to_linear(3.0103)  # doctest: +ELLIPSIS
    2.000...
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises ``ValueError`` for non-positive ratios, which have no dB
    representation.
    """
    if ratio <= 0.0:
        raise ValueError(f"cannot express non-positive ratio {ratio!r} in dB")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert optical/electrical power from dBm to watts.

    >>> dbm_to_watts(0.0)
    0.001
    """
    return MILLI * db_to_linear(power_dbm)


def watts_to_dbm(power_w: float) -> float:
    """Convert power in watts to dBm."""
    if power_w <= 0.0:
        raise ValueError(f"cannot express non-positive power {power_w!r} in dBm")
    return linear_to_db(power_w / MILLI)


# ---------------------------------------------------------------------------
# Frequency / wavelength conversions (optical carriers).
# ---------------------------------------------------------------------------


def wavelength_to_frequency(wavelength_m: float) -> float:
    """Optical frequency (Hz) of a carrier with the given vacuum wavelength."""
    if wavelength_m <= 0.0:
        raise ValueError("wavelength must be positive")
    return SPEED_OF_LIGHT / wavelength_m

def frequency_to_wavelength(frequency_hz: float) -> float:
    """Vacuum wavelength (m) of a carrier at the given optical frequency."""
    if frequency_hz <= 0.0:
        raise ValueError("frequency must be positive")
    return SPEED_OF_LIGHT / frequency_hz


def photon_energy(wavelength_m: float) -> float:
    """Energy (J) of a single photon at the given vacuum wavelength."""
    return PLANCK * wavelength_to_frequency(wavelength_m)


# ---------------------------------------------------------------------------
# Engineering-notation formatting (used by report renderers).
# ---------------------------------------------------------------------------

_ENG_PREFIXES = {
    -15: "f",
    -12: "p",
    -9: "n",
    -6: "u",
    -3: "m",
    0: "",
    3: "k",
    6: "M",
    9: "G",
    12: "T",
}


def format_si(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(1.2e-9, 's')``.

    >>> format_si(1.21e-3, 's')
    '1.21 ms'
    """
    if value == 0.0:
        return f"0 {unit}".rstrip()
    magnitude = value if value >= 0 else -value
    exponent = int(math.floor(math.log10(magnitude) / 3.0) * 3)
    exponent = max(-15, min(12, exponent))
    scaled = value / (10.0 ** exponent)
    prefix = _ENG_PREFIXES[exponent]
    text = f"{scaled:.{precision}g} {prefix}{unit}"
    return text.rstrip()
