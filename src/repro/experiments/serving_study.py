"""Latency-under-load studies: serving simulations as cacheable cells.

Two cell shapes cover every serving scenario:

* :class:`ServingCell` — the classic latency–throughput point: one
  model, one arrival process, one batch policy.  ``serve-study`` sweeps
  arrival rate × policy × controller × platform over these.
* :class:`ScenarioCell` — the spec-driven generalisation: a
  multi-tenant traffic mix with per-model SLOs/priorities, deadline-
  aware policies (``edf``/``priority``/shedding), shared
  weight-residency budgets and tunable arrival-process knobs.  The
  declarative study layer (:mod:`repro.studies`) lowers
  :class:`~repro.studies.spec.StudySpec` points onto these, keying the
  cache by the spec digest.

Both reuse the parallel fan-out and the persistent on-disk result cache
of the experiment runner, extending ``cell_key`` with the serving
parameters so serving points never collide with single-inference
results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..cluster.hazards import NODE_HAZARD_KINDS
from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.engine import ExecutionTrace
from ..errors import ConfigurationError
from ..dnn.workload import extract_workload
from ..interposer.photonic.faults import (
    COMPUTE_HAZARD_KINDS,
    ChipletMacDegrade,
    HazardRecord,
    HazardTimeline,
)
from ..mapping.residency import WeightResidency
from ..serving.lifecycle import LifecycleDriver, ResiliencePolicy
from ..serving.metrics import (
    ServingResult,
    aggregate,
    per_model_stats,
    sequence_stats,
    windowed_stats,
)
from ..serving.scheduler import BatchPolicy, RequestScheduler
from ..sim.core import Environment
from ..studies.registry import ARRIVALS, HAZARDS, MODELS
from ..studies.spec import FaultSpec
from .runner import build_platform, cell_key, run_cached

SERVING_STUDY_VERSION = 3
"""Bump (with ``CACHE_SCHEMA_VERSION`` semantics) when the serving
simulation changes meaning, so cached curves are never stale.

Version 2: ``BatchPolicy`` grew ``shed_expired`` (in ``asdict`` and
therefore in every serving key) — results are unchanged, but the
explicit bump records that serving keys moved.

Version 3: ``ServingResult`` grew the hazard fields
(``windows``/``hazard_events``/``time_degraded_s``) and scenario cells
a ``faults`` timeline — fault-free results are unchanged, but the
record layout and key contents moved together."""

DEFAULT_RATES_RPS = (20e3, 50e3, 100e3, 200e3)
"""Default arrival-rate sweep (requests/s): subsaturation through the
knee of the LeNet5-class latency–throughput curve."""

DEFAULT_DURATION_S = 2e-3
"""Default injection window per point (simulated seconds)."""


@dataclass(frozen=True)
class ServingCell:
    """One latency-under-load simulation point.

    ``fidelity`` is the hybrid-fidelity policy
    (:class:`~repro.experiments.fidelity.FidelityPolicy`): ``None`` —
    the default, and the only value the classic constructors produce —
    runs full DES with the exact pre-fidelity cache key.  ``telemetry``
    (a :class:`~repro.obs.policy.TelemetryPolicy`) likewise defaults to
    ``None`` — the untelemetered classic run with the legacy key.
    """

    platform: str
    model: str
    controller: str
    policy: BatchPolicy
    arrival_kind: str
    rate_rps: float
    duration_s: float
    seed: int
    config: PlatformConfig
    fidelity: "object | None" = None
    telemetry: "object | None" = None

    def arrival_process(self):
        """Instantiate the cell's arrival process (via the registry)."""
        return ARRIVALS.get(self.arrival_kind)(self.rate_rps, self.seed)

    def key(self) -> str:
        """Disk-cache key: the inference cell key + serving extras.

        ``fidelity`` and ``telemetry`` enter the extras only when
        armed, so classic DES cells keep their legacy keys byte for
        byte.
        """
        extra = {
            "study": "serving",
            "version": SERVING_STUDY_VERSION,
            "policy": asdict(self.policy),
            "arrival_kind": self.arrival_kind,
            "rate_rps": self.rate_rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
        }
        if self.fidelity is not None:
            extra["fidelity"] = asdict(self.fidelity)
        if self.telemetry is not None:
            extra["telemetry"] = asdict(self.telemetry)
        return cell_key(
            self.platform, self.model, self.controller, self.config,
            extra=extra,
        )


def start_telemetry(telemetry, env, scheduler, sim, duration_s: float,
                    driver=None):
    """Build, attach and start one cell's telemetry session.

    Returns ``None`` when the cell carries no policy — the classic
    untelemetered path.  When armed, the recorder (if tracing) hooks
    into the scheduler, its residency store and the optional lifecycle
    driver, the standard serving gauges are registered, and the sim-time
    sampler process starts.  The sampler only *reads* simulation state
    and its extra timeout events never reorder existing same-time
    events, so armed runs produce bit-identical request records.
    """
    if telemetry is None:
        return None
    # Deferred: the obs package is only needed on the armed path.
    from ..obs.session import TelemetrySession

    session = TelemetrySession(env, telemetry)
    recorder = session.recorder
    if recorder is not None:
        scheduler.obs_trace = recorder
        scheduler.residency.obs_trace = recorder
        if driver is not None:
            driver.obs_trace = recorder
    metrics = session.metrics
    scheduler.obs_metrics = metrics
    metrics.gauge("queue_depth", lambda: float(scheduler.queue_length))
    metrics.gauge("inflight", lambda: float(scheduler.outstanding))
    metrics.gauge(
        "decode_pool_width",
        lambda: float(sum(len(p) for p in scheduler._pools.values())),
    )
    metrics.gauge("weight_resident_bits",
                  lambda: scheduler.residency.resident_bits)
    metrics.gauge(
        "kv_reserved_bits",
        lambda: (
            scheduler.kv.reserved_bits
            if scheduler.kv is not None else 0.0
        ),
    )
    metrics.gauge("mac_utilization", scheduler.compute.mean_utilization)
    fabric = sim.fabric
    metrics.gauge("fabric_inflight",
                  lambda: float(fabric.inflight_requests.value))
    metrics.gauge(
        "channel_utilization",
        lambda: (
            sum(c.utilization() for c in fabric.iter_channels())
            / max(1, sum(1 for _ in fabric.iter_channels()))
        ),
    )
    session.start(duration_s)
    return session


def finish_telemetry(session, scheduler, injected: int, completed: int,
                     shed: int):
    """Fold the scheduler's final counters in and freeze the session.

    Returns the picklable summary (``None`` passes through), so worker
    bodies can attach it to the result unconditionally.
    """
    if session is None:
        return None
    metrics = session.metrics
    metrics.inc("requests_injected", injected)
    metrics.inc("requests_completed", completed)
    metrics.inc("requests_shed", shed)
    metrics.inc("batches_dispatched", scheduler.batches_dispatched)
    metrics.inc("starvation_promotions", scheduler.starvation_promotions)
    metrics.inc("decode_remaps", scheduler.decode_remaps)
    residency = scheduler.residency
    metrics.inc("weight_fetches", residency.fetches_issued)
    metrics.inc("weight_fetch_hits", residency.fetch_hits)
    metrics.inc("weight_evictions", residency.evictions)
    if scheduler.kv is not None:
        metrics.inc("kv_refusals", scheduler.kv.refusals)
    return session.summary(total_requests=injected)


def simulate_serving_cell(cell: ServingCell,
                          record_sink: list | None = None) -> ServingResult:
    """Worker body: one full request-serving simulation of one cell.

    ``record_sink``, when given, receives every per-request record —
    the hybrid-fidelity calibration uses this to extract service-time
    quantiles that the aggregated result does not carry.
    """
    platform = build_platform(cell.platform, cell.config, cell.controller)
    workload = extract_workload(MODELS.get(cell.model)())

    env = Environment()
    sim = platform.build_simulation(env)
    mapping = sim.map_workload(workload)
    trace = ExecutionTrace()
    scheduler = RequestScheduler(
        sim, mapping, cell.model, policy=cell.policy,
        residency=WeightResidency(env), trace=trace,
    )
    session = start_telemetry(cell.telemetry, env, scheduler, sim,
                              cell.duration_s)
    scheduler.serve(cell.arrival_process(), cell.duration_s,
                    vectorized=record_sink is not None)

    elapsed = env.now
    if record_sink is not None:
        record_sink.extend(scheduler.records)
    latency, queue_delay, mean_batch = aggregate(scheduler.records)
    network = sim.fabric.energy_report()
    trace.record_channel_stats(sim.fabric)
    telemetry = finish_telemetry(
        session, scheduler, scheduler.requests_injected,
        scheduler.requests_completed, scheduler.requests_shed,
    )
    return ServingResult(
        platform=platform.name,
        model=cell.model,
        controller=cell.controller,
        policy=cell.policy.label,
        arrival_kind=cell.arrival_kind,
        offered_rps=cell.rate_rps,
        duration_s=cell.duration_s,
        elapsed_s=elapsed,
        requests_injected=scheduler.requests_injected,
        requests_completed=scheduler.requests_completed,
        latency=latency,
        queue_delay=queue_delay,
        mean_batch_size=mean_batch,
        mean_inflight=sim.fabric.mean_inflight_requests,
        mean_compute_utilization=scheduler.compute.mean_utilization(),
        reconfigurations=sim.reconfigurations,
        network_energy_j=network.total_energy_j,
        compute_energy_j=platform.trace_compute_energy_j(trace, elapsed),
        channel_stats=trace.channel_stats,
        telemetry=telemetry,
    )


def simulate_serving_cells(cells: Sequence[ServingCell], jobs: int = 1,
                           cache_dir: str | Path | None = None
                           ) -> list[ServingResult]:
    """Run serving cells with the runner's cache + process fan-out."""
    return run_cached(
        list(cells), lambda cell: cell.key(), simulate_serving_cell,
        jobs=jobs, cache_dir=cache_dir,
    )


# ---------------------------------------------------------------------------
# Spec-driven scenario cells: traffic mixes, SLOs, deadline policies.
# ---------------------------------------------------------------------------


def platform_timelines(
    faults: "FaultSpec | None",
) -> tuple[HazardTimeline | None, tuple[ChipletMacDegrade, ...]]:
    """Lower a platform fault section onto its two hazard timelines.

    Resolves every event kind against the ``HAZARDS`` registry (typed
    did-you-mean errors) and runs the per-kind factory validation, so a
    malformed fault section fails at compile time — before any
    simulation.  Fabric events become a :class:`HazardTimeline` for the
    photonic hazard engine; compute events (``chiplet-mac-degrade``)
    are returned separately for the serving layer to drive through the
    schedulers' :class:`~repro.core.engine.ComputeOccupancy`.
    ``None``/empty lowers to ``(None, ())``.
    """
    if faults is None or not faults.events:
        return None, ()
    fabric = []
    compute = []
    for entry in faults.events:
        fields = entry.to_dict()
        kind = fields.pop("kind")
        if kind in NODE_HAZARD_KINDS:
            raise ConfigurationError(
                f"hazard kind {kind!r} applies to cluster nodes; put it "
                "in cluster.faults (platform.faults takes fabric-level "
                "kinds)"
            )
        event = HAZARDS.get(kind)(**fields)
        if kind in COMPUTE_HAZARD_KINDS:
            compute.append(event)
        else:
            fabric.append(event)
    timeline = HazardTimeline(tuple(fabric)) if fabric else None
    return timeline, tuple(compute)


def hazard_timeline(faults: "FaultSpec | None") -> HazardTimeline | None:
    """Lower a fault section for a study with no serving layer.

    Same validation as :func:`platform_timelines`, but compute-side
    kinds are rejected: without a serving layer nothing drives the
    chiplet occupancy they degrade, so accepting one would silently
    no-op (and still move the cache digest).
    """
    timeline, compute = platform_timelines(faults)
    if compute:
        raise ConfigurationError(
            f"hazard kind {compute[0].kind!r} applies to the serving "
            "compute path; it needs a serving study (nothing drives the "
            "chiplet MAC occupancy in a single-inference run)"
        )
    return timeline


def _drive_mac_degrade(env, compute, event: ChipletMacDegrade):
    """Apply one compute hazard to one occupancy: degrade at ``at_s``,
    restore after ``duration_s`` (never, when open-ended)."""
    if event.at_s > env.now:
        yield env.timeout(event.at_s - env.now)
    compute.set_mac_fraction(event.mac_fraction)
    if event.duration_s is not None:
        yield env.timeout(event.duration_s)
        compute.set_mac_fraction(1.0)


def start_compute_hazards(env, computes,
                          events: tuple[ChipletMacDegrade, ...]) -> None:
    """Launch the driver processes applying ``events`` to every
    occupancy in ``computes`` (one per node for fleets)."""
    for compute in computes:
        for event in events:
            env.process(_drive_mac_degrade(env, compute, event))


def compute_hazard_records(
    events: tuple[ChipletMacDegrade, ...], elapsed: float
) -> tuple[HazardRecord, ...]:
    """Synthesized engine-style records for applied compute hazards."""
    return tuple(
        HazardRecord(
            kind=event.kind,
            start_s=event.at_s,
            end_s=(
                event.at_s + event.duration_s
                if event.duration_s is not None else None
            ),
        )
        for event in events
        if event.at_s <= elapsed
    )


def _compute_degraded_s(events: tuple[ChipletMacDegrade, ...],
                        elapsed: float) -> float:
    """Wall-clock with MAC throughput below nominal (interval union)."""
    intervals = sorted(
        (
            event.at_s,
            min(
                elapsed,
                event.at_s + event.duration_s
                if event.duration_s is not None else elapsed,
            ),
        )
        for event in events
        if event.at_s < elapsed
    )
    total = 0.0
    cursor = 0.0
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            total += end - start
            cursor = end
        cursor = max(cursor, end)
    return total


def _merge_window(window: "tuple[float, float] | None",
                  events: tuple[ChipletMacDegrade, ...],
                  elapsed: float) -> "tuple[float, float] | None":
    """Fold compute-hazard spans into the engine's fault window."""
    spans = [
        (
            event.at_s,
            min(
                elapsed,
                event.at_s + event.duration_s
                if event.duration_s is not None else elapsed,
            ),
        )
        for event in events
        if event.at_s < elapsed
    ]
    if window is not None:
        spans.append(window)
    if not spans:
        return None
    return min(s for s, _ in spans), max(e for _, e in spans)


@dataclass(frozen=True)
class ScenarioCell:
    """One spec-driven serving point: a traffic mix under one policy.

    ``models`` is the mix as ``(name, fraction, slo_s, priority)``
    tuples; the first entry is the scheduler's primary model.
    ``digest`` is the resolved study-spec digest — it already covers
    every field, so it (plus the platform config, belt-and-braces) is
    the cache identity.

    ``sequences`` marks an autoregressive scenario: one
    ``(prompt_tokens, output_tokens)`` pair per mix entry, ``(0, 0)``
    for single-step (CNN) tenants, with ``length_distribution`` naming
    the per-request sampler.  ``quotas`` caps each tenant's outstanding
    requests (``None`` per entry = uncapped) and ``starvation_age_s``
    arms the priority policy's aging guard.  All of these enter the
    cache key only when set, so pre-transformer cells keep their keys
    byte for byte.
    """

    platform: str
    models: tuple[tuple[str, float, float | None, int], ...]
    controller: str
    policy: BatchPolicy
    arrival_kind: str
    rate_rps: float
    duration_s: float
    seed: int
    config: PlatformConfig
    burstiness: float = 4.0
    dwell_s: float = 20e-6
    think_time_s: float = 10e-6
    residency_capacity_bits: float | None = None
    faults: FaultSpec | None = None
    digest: str = ""
    resilience: ResiliencePolicy | None = None
    fidelity: "object | None" = None
    sequences: tuple[tuple[int, int], ...] = ()
    length_distribution: str = "fixed"
    quotas: tuple[int | None, ...] = ()
    starvation_age_s: float | None = None
    telemetry: "object | None" = None

    @property
    def mix_label(self) -> str:
        """Readable mix name: ``70%LeNet5+30%ResNet50`` (or the model)."""
        if len(self.models) == 1:
            return self.models[0][0]
        return "+".join(
            f"{fraction * 100:.0f}%{name}"
            for name, fraction, _, _ in self.models
        )

    def key(self) -> str:
        """Disk-cache key: every behavioral field plus the spec digest.

        The digest alone would suffice for compiler-built cells, but it
        is defaultable — directly constructed cells must still never
        collide, so the full cell identity goes into the hash.
        ``resilience`` and ``fidelity`` enter the extras only when set,
        so cells without them keep their legacy keys byte for byte.
        """
        extra = {
            "study": "scenario",
            "version": SERVING_STUDY_VERSION,
            "models": list(self.models),
            "policy": asdict(self.policy),
            "arrival_kind": self.arrival_kind,
            "rate_rps": self.rate_rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "burstiness": self.burstiness,
            "dwell_s": self.dwell_s,
            "think_time_s": self.think_time_s,
            "residency_capacity_bits": self.residency_capacity_bits,
            "faults": (
                self.faults.to_dict() if self.faults else None
            ),
            "spec": self.digest,
        }
        if self.resilience is not None:
            extra["resilience"] = asdict(self.resilience)
        if self.fidelity is not None:
            extra["fidelity"] = asdict(self.fidelity)
        if self.sequences:
            extra["sequences"] = [list(pair) for pair in self.sequences]
            extra["length_distribution"] = self.length_distribution
        if self.quotas:
            extra["quotas"] = list(self.quotas)
        if self.starvation_age_s is not None:
            extra["starvation_age_s"] = self.starvation_age_s
        if self.telemetry is not None:
            extra["telemetry"] = asdict(self.telemetry)
        return cell_key(
            self.platform, self.mix_label, self.controller, self.config,
            extra=extra,
        )


def _mix_stream(models: tuple[tuple[str, float, float | None, int], ...],
                seed: int) -> Iterator[str] | None:
    """Seeded infinite stream assigning each arrival to a tenant.

    Single-tenant mixes skip the RNG entirely so a one-model scenario
    replays the exact event sequence of the classic serving cell.
    """
    if len(models) == 1:
        return None
    names = [name for name, _, _, _ in models]
    fractions = np.cumsum([fraction for _, fraction, _, _ in models])
    rng = np.random.default_rng((seed, 211))

    def stream() -> Iterator[str]:
        while True:
            draw = rng.random()
            index = int(np.searchsorted(fractions, draw, side="right"))
            yield names[min(index, len(names) - 1)]

    return stream()


def _sequence_stream(
    models: tuple[tuple[str, float, float | None, int], ...],
    sequences: tuple[tuple[int, int], ...],
    distribution: str,
    seed: int,
) -> Iterator[tuple[str, int, int]]:
    """Seeded infinite stream of (tenant, prompt, output) submissions.

    The tenant draw replays :func:`_mix_stream`'s RNG exactly
    (``(seed, 211)``); lengths come from an independent stream
    (``(seed, 311)``) so the sampler never perturbs tenant assignment.
    ``fixed`` uses the configured means verbatim; ``geometric`` draws
    each length with that mean (minimum one token).  Single-step
    tenants (``(0, 0)``) consume no length draws.
    """
    names = [name for name, _, _, _ in models]
    fractions = np.cumsum([fraction for _, fraction, _, _ in models])
    mix_rng = np.random.default_rng((seed, 211))
    length_rng = np.random.default_rng((seed, 311))

    def draw(mean: int) -> int:
        if mean <= 0:
            return 0
        if distribution == "fixed":
            return mean
        return int(length_rng.geometric(1.0 / mean))

    def stream() -> Iterator[tuple[str, int, int]]:
        while True:
            if len(names) == 1:
                index = 0
            else:
                pick = mix_rng.random()
                index = min(
                    int(np.searchsorted(fractions, pick, side="right")),
                    len(names) - 1,
                )
            prompt_mean, output_mean = sequences[index]
            yield names[index], draw(prompt_mean), draw(output_mean)

    return stream()


def simulate_scenario_cell(cell: ScenarioCell,
                           record_sink: list | None = None) -> ServingResult:
    """Worker body: one full multi-tenant serving simulation.

    ``record_sink`` exposes the per-request records to hybrid-fidelity
    calibration, same as :func:`simulate_serving_cell`.
    """
    fabric_faults, compute_events = platform_timelines(cell.faults)
    platform = build_platform(
        cell.platform, cell.config, cell.controller,
        faults=fabric_faults,
    )
    env = Environment()
    sim = platform.build_simulation(env)
    trace = ExecutionTrace()
    residency = WeightResidency(
        env, capacity_bits=cell.residency_capacity_bits
    )

    quotas = cell.quotas or (None,) * len(cell.models)
    (primary, fraction, slo_s, priority), *tenants = cell.models
    scheduler = RequestScheduler(
        sim, sim.map_workload(extract_workload(MODELS.get(primary)())),
        primary, policy=cell.policy, residency=residency, trace=trace,
        slo_s=slo_s, priority=priority, quota=quotas[0],
        starvation_age_s=cell.starvation_age_s,
    )
    for index, (name, _, tenant_slo, tenant_priority) in enumerate(
        tenants, start=1
    ):
        scheduler.add_model(
            name, sim.map_workload(extract_workload(MODELS.get(name)())),
            slo_s=tenant_slo, priority=tenant_priority,
            quota=quotas[index],
        )
    if compute_events:
        start_compute_hazards(env, (scheduler.compute,), compute_events)

    arrivals = ARRIVALS.get(cell.arrival_kind)(
        cell.rate_rps, cell.seed, burstiness=cell.burstiness,
        dwell_s=cell.dwell_s, think_time_s=cell.think_time_s,
    )
    if cell.sequences:
        mix = _sequence_stream(cell.models, cell.sequences,
                               cell.length_distribution, cell.seed)
    else:
        mix = _mix_stream(cell.models, cell.seed)
    driver = None
    if cell.resilience is not None and cell.resilience:
        driver = LifecycleDriver(scheduler, cell.resilience,
                                 seed=cell.seed)
        session = start_telemetry(cell.telemetry, env, scheduler, sim,
                                  cell.duration_s, driver=driver)
        driver.serve(arrivals, cell.duration_s, models=mix)
        # Client-visible accounting: logical requests, with retries and
        # hedges folded into each one's latency.
        records = driver.records
        injected = driver.requests_injected
        completed = driver.requests_completed
        shed = driver.requests_gave_up
        resilience_stats = driver.stats()
    else:
        session = start_telemetry(cell.telemetry, env, scheduler, sim,
                                  cell.duration_s)
        scheduler.serve(arrivals, cell.duration_s, models=mix)
        records = scheduler.records
        injected = scheduler.requests_injected
        completed = scheduler.requests_completed
        shed = scheduler.requests_shed
        resilience_stats = None

    elapsed = env.now
    if record_sink is not None:
        record_sink.extend(records)
    latency, queue_delay, mean_batch = aggregate(records)
    network = sim.fabric.energy_report()
    trace.record_channel_stats(sim.fabric)
    windows = ()
    hazard_events: tuple = ()
    time_degraded_s = 0.0
    window = None
    if sim.hazards is not None:
        window = sim.hazards.fault_window(elapsed)
        hazard_events = tuple(sim.hazards.records)
        time_degraded_s = sim.hazards.time_degraded_s(elapsed)
    if compute_events:
        window = _merge_window(window, compute_events, elapsed)
        hazard_events = hazard_events + compute_hazard_records(
            compute_events, elapsed
        )
        time_degraded_s += _compute_degraded_s(compute_events, elapsed)
    if window is not None:
        windows = windowed_stats(records, window[0], window[1], elapsed)
    seq_ttft = seq_token = None
    tokens = 0
    tokens_per_s = 0.0
    if cell.sequences:
        seq_ttft, seq_token, tokens, tokens_per_s = sequence_stats(
            records, elapsed
        )
    return ServingResult(
        platform=platform.name,
        model=cell.mix_label,
        controller=cell.controller,
        policy=cell.policy.label,
        arrival_kind=cell.arrival_kind,
        offered_rps=cell.rate_rps,
        duration_s=cell.duration_s,
        elapsed_s=elapsed,
        requests_injected=injected,
        requests_completed=completed,
        latency=latency,
        queue_delay=queue_delay,
        mean_batch_size=mean_batch,
        mean_inflight=sim.fabric.mean_inflight_requests,
        mean_compute_utilization=scheduler.compute.mean_utilization(),
        reconfigurations=sim.reconfigurations,
        network_energy_j=network.total_energy_j,
        compute_energy_j=platform.trace_compute_energy_j(trace, elapsed),
        channel_stats=trace.channel_stats,
        requests_shed=shed,
        per_model=per_model_stats(records, elapsed, scheduler.slos(),
                                  quota_denied=scheduler.quota_denied),
        windows=windows,
        hazard_events=hazard_events,
        time_degraded_s=time_degraded_s,
        resilience=resilience_stats,
        ttft=seq_ttft,
        token_latency=seq_token,
        tokens_generated=tokens,
        tokens_per_s=tokens_per_s,
        kv_refusals=scheduler.kv.refusals if scheduler.kv else 0,
        kv_peak_bits=(
            scheduler.kv.peak_reserved_bits if scheduler.kv else 0.0
        ),
        decode_remaps=scheduler.decode_remaps,
        telemetry=finish_telemetry(session, scheduler, injected,
                                   completed, shed),
    )


def simulate_any_serving_cell(cell) -> ServingResult:
    """Dispatch worker shared by mixed classic/scenario/cluster lists."""
    if getattr(cell, "fidelity", None) is not None:
        # Deferred: the fidelity engine orchestrates the cell workers
        # below, so importing it eagerly would cycle.
        from .fidelity import simulate_fidelity_cell

        return simulate_fidelity_cell(cell)
    if isinstance(cell, ScenarioCell):
        return simulate_scenario_cell(cell)
    # Deferred: the cluster study module resolves names against the
    # registries this module's importers construct.
    from ..cluster.study import ClusterCell, simulate_cluster_cell

    if isinstance(cell, ClusterCell):
        return simulate_cluster_cell(cell)
    return simulate_serving_cell(cell)


def simulate_study_cells(cells: Sequence, jobs: int = 1,
                         cache_dir: str | Path | None = None,
                         stats=None) -> list[ServingResult]:
    """Run a mixed list of classic, scenario and cluster serving cells."""
    return run_cached(
        list(cells), lambda cell: cell.key(), simulate_any_serving_cell,
        jobs=jobs, cache_dir=cache_dir, stats=stats,
    )


def serving_study(
    model_name: str = "LeNet5",
    platforms: tuple[str, ...] = ("2.5D-CrossLight-SiPh",),
    controllers: tuple[str, ...] = ("resipi",),
    policies: tuple[BatchPolicy, ...] = (BatchPolicy.fifo(),),
    rates_rps: tuple[float, ...] = DEFAULT_RATES_RPS,
    arrival_kind: str = "poisson",
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 7,
    config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[ServingResult]:
    """The full sweep: rate × policy × controller × platform.

    Controllers only differentiate the photonic platform; electrical
    and monolithic baselines run once per (rate, policy) under the
    first controller label to avoid duplicate cells.
    """
    config = config or DEFAULT_PLATFORM
    cells = []
    for platform in platforms:
        platform_controllers = (
            controllers if platform == "2.5D-CrossLight-SiPh"
            else controllers[:1]
        )
        for controller in platform_controllers:
            for policy in policies:
                for rate in rates_rps:
                    cells.append(ServingCell(
                        platform=platform, model=model_name,
                        controller=controller, policy=policy,
                        arrival_kind=arrival_kind, rate_rps=rate,
                        duration_s=duration_s, seed=seed, config=config,
                    ))
    return simulate_serving_cells(cells, jobs=jobs, cache_dir=cache_dir)


def latency_throughput_curve(
    results: Sequence[ServingResult],
) -> list[tuple[float, float, float]]:
    """(offered rps, goodput rps, p99 latency s) points, rate-sorted."""
    return sorted(
        (r.offered_rps, r.goodput_rps, r.latency.p99_s) for r in results
    )


def render_slo_summary(results: Sequence[ServingResult]) -> str:
    """Per-tenant SLO table: one row per (point, model).

    Empty string when no result carries per-model stats (classic
    latency–throughput sweeps), so callers can append unconditionally.
    """
    rows = [
        (result, stats)
        for result in results
        for stats in result.per_model
    ]
    if not rows:
        return ""
    header = (
        f"{'policy':<16}{'offered/s':>12}  {'model':<18}{'slo(us)':>9}"
        f"{'done':>7}{'shed':>6}{'viol':>6}{'attain':>9}{'p99(us)':>10}"
    )
    lines = [header, "-" * len(header)]
    for result, stats in rows:
        slo = "-" if stats.slo_s is None else f"{stats.slo_s * 1e6:.0f}"
        lines.append(
            f"{result.policy:<16}{result.offered_rps:>12.0f}  "
            f"{stats.model:<18}{slo:>9}"
            f"{stats.completed:>7}{stats.shed:>6}{stats.slo_violations:>6}"
            f"{stats.slo_attainment:>9.2%}"
            f"{stats.latency.p99_s * 1e6:>10.1f}"
        )
    return "\n".join(lines)


def render_sequence_summary(results: Sequence[ServingResult]) -> str:
    """Autoregressive serving table: one row per sequence-serving point.

    Empty string when no result carries token metrics (single-step
    runs), so callers can append unconditionally.
    """
    rows = [r for r in results if r.is_sequence_run]
    if not rows:
        return ""
    header = (
        f"{'policy':<16}{'offered/s':>12}  {'mix':<26}"
        f"{'ttft p50(us)':>13}{'ttft p99(us)':>13}{'tok p99(us)':>12}"
        f"{'tokens':>9}{'tok/s':>11}{'kv-ref':>7}{'remaps':>7}"
    )
    lines = [header, "-" * len(header)]
    for result in rows:
        ttft = result.ttft
        token = result.token_latency
        lines.append(
            f"{result.policy:<16}{result.offered_rps:>12.0f}  "
            f"{result.model:<26}"
            f"{(ttft.p50_s * 1e6 if ttft else 0):>13.1f}"
            f"{(ttft.p99_s * 1e6 if ttft else 0):>13.1f}"
            f"{(token.p99_s * 1e6 if token else 0):>12.1f}"
            f"{result.tokens_generated:>9}"
            f"{result.tokens_per_s:>11.0f}"
            f"{result.kv_refusals:>7}"
            f"{result.decode_remaps:>7}"
        )
    return "\n".join(lines)


def render_fault_windows(results: Sequence[ServingResult]) -> str:
    """Windowed degradation table: one row per (point, window).

    Empty string when no result carries fault windows (fault-free
    runs), so callers can append unconditionally.
    """
    rows = [
        (result, window)
        for result in results
        for window in result.windows
    ]
    if not rows:
        return ""
    header = (
        f"{'policy':<16}{'offered/s':>12}  {'window':<8}{'span(us)':>16}"
        f"{'done':>7}{'shed':>6}{'goodput/s':>12}{'p99(us)':>10}"
        f"{'attain':>9}"
    )
    lines = [header, "-" * len(header)]
    for result, window in rows:
        span = (
            f"{window.start_s * 1e6:.0f}-{window.end_s * 1e6:.0f}"
        )
        lines.append(
            f"{result.policy:<16}{result.offered_rps:>12.0f}  "
            f"{window.label:<8}{span:>16}"
            f"{window.completed:>7}{window.shed:>6}"
            f"{window.goodput_rps:>12.0f}"
            f"{window.latency.p99_s * 1e6:>10.1f}"
            f"{window.slo_attainment:>9.2%}"
        )
    for result in results:
        if result.windows:
            lines.append(
                f"{result.policy:<16}{result.offered_rps:>12.0f}  "
                f"time degraded: {result.time_degraded_s * 1e6:.0f} us "
                f"({result.platform}, {result.controller})"
            )
    return "\n".join(lines)


def render_serving_study(results: Sequence[ServingResult]) -> str:
    """Text latency–throughput table, one row per simulated point."""
    header = (
        f"{'platform':<28}{'policy':<12}{'offered/s':>12}{'goodput/s':>12}"
        f"{'p50(us)':>11}{'p95(us)':>11}{'p99(us)':>11}{'util':>8}"
    )
    lines = [header, "-" * len(header)]
    ordered = sorted(
        results,
        key=lambda r: (r.platform, r.controller, r.policy, r.offered_rps),
    )
    for result in ordered:
        lines.append(result.summary_row())
    return "\n".join(lines)
