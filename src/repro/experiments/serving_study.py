"""Latency-under-load study: latency–throughput curves per platform.

Sweeps arrival rate × batch policy × controller × platform for one
model, simulating a full request-serving window per point
(:mod:`repro.serving`), and reports the latency–throughput curve with
tail percentiles, goodput and fabric utilization.  Each point is an
independent *cell* — the study reuses the parallel fan-out and the
persistent on-disk result cache of the experiment runner, extending
``cell_key`` with the serving parameters so serving points never
collide with single-inference results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.engine import ExecutionTrace
from ..dnn import zoo
from ..dnn.workload import extract_workload
from ..mapping.residency import WeightResidency
from ..serving.metrics import ServingResult, aggregate
from ..serving.scheduler import BatchPolicy, RequestScheduler
from ..sim.core import Environment
from ..sim.traffic import ARRIVAL_KINDS, ClosedLoopClients
from .runner import ResultCache, build_platform, cell_key, parallel_map

SERVING_STUDY_VERSION = 1
"""Bump (with ``CACHE_SCHEMA_VERSION`` semantics) when the serving
simulation changes meaning, so cached curves are never stale."""

DEFAULT_RATES_RPS = (20e3, 50e3, 100e3, 200e3)
"""Default arrival-rate sweep (requests/s): subsaturation through the
knee of the LeNet5-class latency–throughput curve."""

DEFAULT_DURATION_S = 2e-3
"""Default injection window per point (simulated seconds)."""


@dataclass(frozen=True)
class ServingCell:
    """One latency-under-load simulation point."""

    platform: str
    model: str
    controller: str
    policy: BatchPolicy
    arrival_kind: str
    rate_rps: float
    duration_s: float
    seed: int
    config: PlatformConfig

    def arrival_process(self):
        """Instantiate the cell's arrival process."""
        kind = ARRIVAL_KINDS[self.arrival_kind]
        if kind is ClosedLoopClients:
            # Closed loop: rate sets the client population via the
            # zero-service-time bound n = rate * think.
            think_s = 10e-6
            n_clients = max(1, round(self.rate_rps * think_s))
            return ClosedLoopClients(n_clients=n_clients,
                                     think_time_s=think_s, seed=self.seed)
        return kind(rate_rps=self.rate_rps, seed=self.seed)

    def key(self) -> str:
        """Disk-cache key: the inference cell key + serving extras."""
        return cell_key(
            self.platform, self.model, self.controller, self.config,
            extra={
                "study": "serving",
                "version": SERVING_STUDY_VERSION,
                "policy": asdict(self.policy),
                "arrival_kind": self.arrival_kind,
                "rate_rps": self.rate_rps,
                "duration_s": self.duration_s,
                "seed": self.seed,
            },
        )


def simulate_serving_cell(cell: ServingCell) -> ServingResult:
    """Worker body: one full request-serving simulation of one cell."""
    platform = build_platform(cell.platform, cell.config, cell.controller)
    workload = extract_workload(zoo.build(cell.model))

    env = Environment()
    sim = platform.build_simulation(env)
    mapping = sim.map_workload(workload)
    trace = ExecutionTrace()
    scheduler = RequestScheduler(
        sim, mapping, cell.model, policy=cell.policy,
        residency=WeightResidency(env), trace=trace,
    )
    scheduler.serve(cell.arrival_process(), cell.duration_s)

    elapsed = env.now
    latency, queue_delay, mean_batch = aggregate(scheduler.records)
    network = sim.fabric.energy_report()
    trace.record_channel_stats(sim.fabric)
    return ServingResult(
        platform=platform.name,
        model=cell.model,
        controller=cell.controller,
        policy=cell.policy.label,
        arrival_kind=cell.arrival_kind,
        offered_rps=cell.rate_rps,
        duration_s=cell.duration_s,
        elapsed_s=elapsed,
        requests_injected=scheduler.requests_injected,
        requests_completed=scheduler.requests_completed,
        latency=latency,
        queue_delay=queue_delay,
        mean_batch_size=mean_batch,
        mean_inflight=sim.fabric.mean_inflight_requests,
        mean_compute_utilization=scheduler.compute.mean_utilization(),
        reconfigurations=sim.reconfigurations,
        network_energy_j=network.total_energy_j,
        compute_energy_j=platform.trace_compute_energy_j(trace, elapsed),
        channel_stats=trace.channel_stats,
    )


def simulate_serving_cells(cells: Sequence[ServingCell], jobs: int = 1,
                           cache_dir: str | Path | None = None
                           ) -> list[ServingResult]:
    """Run serving cells with the runner's cache + process fan-out."""
    cache = ResultCache(cache_dir) if cache_dir else None
    results: list[ServingResult | None] = [None] * len(cells)
    pending: list[int] = []
    for index, cell in enumerate(cells):
        hit = cache.get(cell.key()) if cache is not None else None
        if hit is not None:
            results[index] = hit
        else:
            pending.append(index)
    fresh = parallel_map(
        simulate_serving_cell, [(cells[i],) for i in pending], jobs
    )
    for index, result in zip(pending, fresh):
        results[index] = result
        if cache is not None:
            cache.put(cells[index].key(), result)
    return results  # type: ignore[return-value]


def serving_study(
    model_name: str = "LeNet5",
    platforms: tuple[str, ...] = ("2.5D-CrossLight-SiPh",),
    controllers: tuple[str, ...] = ("resipi",),
    policies: tuple[BatchPolicy, ...] = (BatchPolicy.fifo(),),
    rates_rps: tuple[float, ...] = DEFAULT_RATES_RPS,
    arrival_kind: str = "poisson",
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 7,
    config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[ServingResult]:
    """The full sweep: rate × policy × controller × platform.

    Controllers only differentiate the photonic platform; electrical
    and monolithic baselines run once per (rate, policy) under the
    first controller label to avoid duplicate cells.
    """
    config = config or DEFAULT_PLATFORM
    cells = []
    for platform in platforms:
        platform_controllers = (
            controllers if platform == "2.5D-CrossLight-SiPh"
            else controllers[:1]
        )
        for controller in platform_controllers:
            for policy in policies:
                for rate in rates_rps:
                    cells.append(ServingCell(
                        platform=platform, model=model_name,
                        controller=controller, policy=policy,
                        arrival_kind=arrival_kind, rate_rps=rate,
                        duration_s=duration_s, seed=seed, config=config,
                    ))
    return simulate_serving_cells(cells, jobs=jobs, cache_dir=cache_dir)


def latency_throughput_curve(
    results: Sequence[ServingResult],
) -> list[tuple[float, float, float]]:
    """(offered rps, goodput rps, p99 latency s) points, rate-sorted."""
    return sorted(
        (r.offered_rps, r.goodput_rps, r.latency.p99_s) for r in results
    )


def render_serving_study(results: Sequence[ServingResult]) -> str:
    """Text latency–throughput table, one row per simulated point."""
    header = (
        f"{'platform':<28}{'policy':<12}{'offered/s':>12}{'goodput/s':>12}"
        f"{'p50(us)':>11}{'p95(us)':>11}{'p99(us)':>11}{'util':>8}"
    )
    lines = [header, "-" * len(header)]
    ordered = sorted(
        results,
        key=lambda r: (r.platform, r.controller, r.policy, r.offered_rps),
    )
    for result in ordered:
        lines.append(result.summary_row())
    return "\n".join(lines)
