"""Figure 7 regeneration: per-model normalized power, latency and EPB.

Fig. 7 plots, for each of the five DNNs, (a) normalized power,
(b) normalized total latency and (c) normalized energy-per-bit across
the three platforms.  The figure's normalization base is not stated in
the text; we normalize each model's bars to the monolithic CrossLight
value (CrossLight = 1.0), which preserves every ratio the prose quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .runner import MODEL_NAMES, PLATFORM_ORDER, ExperimentRunner

METRICS = {
    "power": "average_power_w",
    "latency": "latency_s",
    "epb": "energy_per_bit_j",
}
"""Fig. 7 panel name -> InferenceResult attribute."""

NORMALIZATION_BASE = "CrossLight"


@dataclass(frozen=True)
class Fig7Series:
    """One panel of Fig. 7: metric values per (model, platform)."""

    metric: str
    absolute: dict[str, dict[str, float]]
    normalized: dict[str, dict[str, float]]

    def bar(self, model: str, platform: str) -> float:
        """Normalized bar height for one (model, platform) pair."""
        return self.normalized[model][platform]


def fig7_series(runner: ExperimentRunner, metric: str,
                models: tuple[str, ...] = MODEL_NAMES) -> Fig7Series:
    """Compute one Fig. 7 panel.

    Missing cells are filled by ``runner.run_matrix`` first, so a runner
    configured with ``jobs``/``cache_dir`` simulates them in parallel
    (or not at all); the per-cell lookups below then hit memory.
    """
    runner.run_matrix(models=models)
    attribute = METRICS[metric]
    absolute: dict[str, dict[str, float]] = {}
    normalized: dict[str, dict[str, float]] = {}
    for model in models:
        absolute[model] = {}
        for platform in PLATFORM_ORDER:
            absolute[model][platform] = getattr(
                runner.run(platform, model), attribute
            )
        base = absolute[model][NORMALIZATION_BASE]
        normalized[model] = {
            platform: value / base
            for platform, value in absolute[model].items()
        }
    return Fig7Series(metric=metric, absolute=absolute, normalized=normalized)


def fig7_all(runner: ExperimentRunner | None = None
             ) -> dict[str, Fig7Series]:
    """All three Fig. 7 panels."""
    runner = runner or ExperimentRunner()
    return {metric: fig7_series(runner, metric) for metric in METRICS}


def render_fig7(series: Fig7Series) -> str:
    """Text rendering of one panel, one row per model."""
    header = f"Fig. 7 ({series.metric}, normalized to CrossLight = 1.0)"
    lines = [header, "-" * len(header)]
    platforms = PLATFORM_ORDER
    lines.append(
        f"{'model':<14}" + "".join(f"{p:>24}" for p in platforms)
    )
    for model, row in series.normalized.items():
        lines.append(
            f"{model:<14}"
            + "".join(f"{row[platform]:>24.3f}" for platform in platforms)
        )
    return "\n".join(lines)
