"""Table 3 regeneration: average power, latency and EPB per platform.

Reproduces the ten-row comparison: the three simulated platforms
(averaged over the five Table 2 models) plus the seven literature
platforms modelled in :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.platforms import LITERATURE_PLATFORMS
from .runner import MODEL_NAMES, PLATFORM_ORDER, ExperimentRunner

PAPER_TABLE3 = {
    "CrossLight": (50.8, 8.0, 3.6),
    "2.5D-CrossLight-Elec": (45.3, 41.4, 20.5),
    "2.5D-CrossLight-SiPh": (89.7, 1.21, 1.3),
    "Nvidia P100 GPU": (250.0, 13.1, 12.3),
    "Intel 9282 CPU": (400.0, 86.5, 64.4),
    "AMD 3970 CPU": (280.0, 141.3, 73.7),
    "Edge TPU": (2.0, 2366.4, 17.6),
    "Null Hop": (2.3, 8049.3, 68.9),
    "Deap_CNN": (122.0, 619.01, 1959.4),
    "HolyLight": (66.5, 86.4, 40.3),
}
"""(power W, latency ms, EPB nJ/bit) exactly as printed in Table 3."""


@dataclass(frozen=True)
class Table3Row:
    """One regenerated Table 3 row."""

    platform: str
    power_w: float
    latency_ms: float
    epb_nj_per_bit: float


@dataclass(frozen=True)
class Table3:
    """The regenerated table plus the headline ratios of Section VI."""

    rows: tuple[Table3Row, ...]

    def row(self, platform: str) -> Table3Row:
        for candidate in self.rows:
            if candidate.platform == platform:
                return candidate
        raise KeyError(platform)

    # -- headline ratios (Section VI prose) ----------------------------------

    @property
    def latency_gain_vs_monolithic(self) -> float:
        """Paper: 6.6x lower latency than monolithic CrossLight."""
        return (
            self.row("CrossLight").latency_ms
            / self.row("2.5D-CrossLight-SiPh").latency_ms
        )

    @property
    def epb_gain_vs_monolithic(self) -> float:
        """Paper: 2.8x lower EPB than monolithic CrossLight."""
        return (
            self.row("CrossLight").epb_nj_per_bit
            / self.row("2.5D-CrossLight-SiPh").epb_nj_per_bit
        )

    @property
    def latency_gain_vs_electrical(self) -> float:
        """Paper: 34x lower latency than the electrical interposer."""
        return (
            self.row("2.5D-CrossLight-Elec").latency_ms
            / self.row("2.5D-CrossLight-SiPh").latency_ms
        )

    @property
    def epb_gain_vs_electrical(self) -> float:
        """Paper: 15.8x lower EPB than the electrical interposer."""
        return (
            self.row("2.5D-CrossLight-Elec").epb_nj_per_bit
            / self.row("2.5D-CrossLight-SiPh").epb_nj_per_bit
        )


def build_table3(runner: ExperimentRunner | None = None,
                 models: tuple[str, ...] = MODEL_NAMES) -> Table3:
    """Run everything Table 3 needs and assemble the rows.

    The simulated cells are pre-filled via ``runner.run_matrix`` so a
    parallel/cached runner does them all in one fan-out; the literature
    baselines are closed-form and stay serial.
    """
    runner = runner or ExperimentRunner()
    runner.run_matrix(models=models)
    rows = []
    for platform in PLATFORM_ORDER:
        rows.append(
            Table3Row(
                platform=platform,
                power_w=runner.average(platform, "average_power_w", models),
                latency_ms=runner.average(platform, "latency_s", models)
                * 1e3,
                epb_nj_per_bit=runner.average(
                    platform, "energy_per_bit_j", models
                )
                * 1e9,
            )
        )
    for baseline in LITERATURE_PLATFORMS:
        results = [
            baseline.run_workload(runner.workload(model)) for model in models
        ]
        rows.append(
            Table3Row(
                platform=baseline.name,
                power_w=sum(r.average_power_w for r in results) / len(results),
                latency_ms=sum(r.latency_s for r in results)
                / len(results)
                * 1e3,
                epb_nj_per_bit=sum(r.energy_per_bit_j for r in results)
                / len(results)
                * 1e9,
            )
        )
    return Table3(rows=tuple(rows))


def render_table3(table: Table3, include_paper: bool = True) -> str:
    """Text rendering, optionally with the paper's values side by side."""
    lines = [
        "Table 3: average power, latency and energy-per-bit",
        f"{'platform':<24}{'power(W)':>10}{'lat(ms)':>12}{'EPB(nJ/b)':>12}"
        + ("{:>30}".format("paper (P / L / EPB)") if include_paper else ""),
        "-" * (58 + (30 if include_paper else 0)),
    ]
    for row in table.rows:
        line = (
            f"{row.platform:<24}{row.power_w:>10.2f}"
            f"{row.latency_ms:>12.3f}{row.epb_nj_per_bit:>12.3f}"
        )
        if include_paper and row.platform in PAPER_TABLE3:
            p, l, e = PAPER_TABLE3[row.platform]
            line += f"{p:>12.1f}{l:>9.2f}{e:>9.1f}"
        lines.append(line)
    lines.append("")
    lines.append(
        "headline ratios (paper: 6.6x / 2.8x / 34x / 15.8x): "
        f"{table.latency_gain_vs_monolithic:.1f}x lat vs mono, "
        f"{table.epb_gain_vs_monolithic:.1f}x EPB vs mono, "
        f"{table.latency_gain_vs_electrical:.1f}x lat vs elec, "
        f"{table.epb_gain_vs_electrical:.1f}x EPB vs elec"
    )
    return "\n".join(lines)
