"""Design-space exploration (Section VII, open challenge 3).

The paper's conclusions call for exploration of the number of
wavelengths, gateways per chiplet, and MACs per chiplet.  These sweeps
implement that study as declarative specs lowered through the study
compiler (:mod:`repro.studies`), plus an ablation of the interposer
reconfiguration policy (ReSiPI vs PROWAVES vs static).

Every sweep takes ``jobs``/``cache_dir``: design points are independent
simulations, so they fan out over worker processes and share the
persistent result cache (see :mod:`repro.experiments.runner`) — the
spec path lowers to the exact same cells and cache keys as the
pre-spec implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.metrics import InferenceResult
from .runner import CacheStats, ExperimentRunner


def _study_api():
    """Late import of the study compiler.

    The compiler sits above the experiment layer (it imports this
    package's modules), so importing it at module scope would be a
    cycle whenever :mod:`repro.studies.compile` loads first.
    """
    from ..studies import builders, compile as study_compile

    return builders, study_compile.run_study


DEFAULT_WAVELENGTH_SWEEP = (8, 16, 32, 64, 128)
DEFAULT_GATEWAY_SWEEP = (1, 2, 4)

SIPH = "2.5D-CrossLight-SiPh"


@dataclass(frozen=True)
class SweepPoint:
    """One design point of a sweep."""

    label: str
    value: float
    result: InferenceResult

    @property
    def latency_ms(self) -> float:
        return self.result.latency_s * 1e3

    @property
    def power_w(self) -> float:
        return self.result.average_power_w

    @property
    def epb_nj(self) -> float:
        return self.result.energy_per_bit_j * 1e9


def sweep_wavelengths(
    model_name: str = "ResNet50",
    values: tuple[int, ...] = DEFAULT_WAVELENGTH_SWEEP,
    base_config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    stats: CacheStats | None = None,
) -> list[SweepPoint]:
    """Latency/power/EPB of the SiPh platform vs wavelength count."""
    builders, run_study = _study_api()
    study = run_study(
        builders.wavelength_sweep_spec(model_name, values),
        jobs=jobs, cache_dir=cache_dir, base_config=base_config,
        stats=stats,
    )
    return [
        SweepPoint(label=f"{n_lambda} wavelengths", value=n_lambda,
                   result=point.results[0])
        for n_lambda, point in zip(values, study.points)
    ]


def sweep_gateways(
    model_name: str = "ResNet50",
    values: tuple[int, ...] = DEFAULT_GATEWAY_SWEEP,
    base_config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    stats: CacheStats | None = None,
) -> list[SweepPoint]:
    """SiPh platform vs gateways per compute chiplet."""
    builders, run_study = _study_api()
    study = run_study(
        builders.gateway_sweep_spec(model_name, values),
        jobs=jobs, cache_dir=cache_dir, base_config=base_config,
        stats=stats,
    )
    return [
        SweepPoint(label=f"{gateways} gateways/chiplet", value=gateways,
                   result=point.results[0])
        for gateways, point in zip(values, study.points)
    ]


def mapping_ablation(
    model_names: tuple[str, ...] = ("ResNet50", "VGG16"),
    base_config: PlatformConfig | None = None,
) -> dict[tuple[str, str], InferenceResult]:
    """Spillover vs strict-kernel-match mapping on the SiPh platform.

    Quantifies how much of the 2.5D win depends on letting conv layers
    spill beyond their kernel-matched chiplets (DESIGN.md discusses why
    the paper's averages imply spillover).  Custom mappers are not part
    of the cache key scheme, so this study always simulates.
    """
    from ..core.accelerator import CrossLight25DSiPh
    from ..interposer.topology import build_floorplan
    from ..mapping.mapper import KernelMatchMapper

    base = base_config or DEFAULT_PLATFORM
    floorplan = build_floorplan(base)
    runner = ExperimentRunner(config=base)
    results = {}
    for strict in (False, True):
        label = "strict" if strict else "spillover"
        mapper = KernelMatchMapper(base, floorplan,
                                   strict_kernel_match=strict)
        platform = CrossLight25DSiPh(base, mapper=mapper)
        for model_name in model_names:
            results[(label, model_name)] = platform.run_workload(
                runner.workload(model_name)
            )
    return results


def controller_ablation(
    model_names: tuple[str, ...] = ("LeNet5", "ResNet50"),
    controllers: tuple[str, ...] = ("resipi", "prowaves", "static"),
    base_config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    stats: CacheStats | None = None,
) -> dict[tuple[str, str], InferenceResult]:
    """Compare interposer reconfiguration policies (E10)."""
    builders, run_study = _study_api()
    study = run_study(
        builders.controller_ablation_spec(model_names, controllers),
        jobs=jobs, cache_dir=cache_dir, base_config=base_config,
        stats=stats,
    )
    return {
        (point.spec.platform.controller, entry.model): result
        for point in study.points
        for entry, result in zip(point.spec.workload.models, point.results)
    }


def render_sweep(title: str, points: list[SweepPoint]) -> str:
    """Text table of a sweep."""
    lines = [
        title,
        f"{'design point':<24}{'latency(ms)':>14}{'power(W)':>12}"
        f"{'EPB(nJ/b)':>12}",
        "-" * 62,
    ]
    for point in points:
        lines.append(
            f"{point.label:<24}{point.latency_ms:>14.4f}"
            f"{point.power_w:>12.2f}{point.epb_nj:>12.3f}"
        )
    return "\n".join(lines)
