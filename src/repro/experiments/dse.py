"""Design-space exploration (Section VII, open challenge 3).

The paper's conclusions call for exploration of the number of
wavelengths, gateways per chiplet, and MACs per chiplet.  These sweeps
implement that study on top of the simulator, plus an ablation of the
interposer reconfiguration policy (ReSiPI vs PROWAVES vs static).

Every sweep takes ``jobs``/``cache_dir``: design points are independent
simulations, so they fan out over worker processes and share the
persistent result cache (see :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from ..config import DEFAULT_PLATFORM, MacGroupConfig, PlatformConfig
from ..core.metrics import InferenceResult
from .runner import ExperimentRunner, simulate_cells

DEFAULT_WAVELENGTH_SWEEP = (8, 16, 32, 64, 128)
DEFAULT_GATEWAY_SWEEP = (1, 2, 4)

SIPH = "2.5D-CrossLight-SiPh"


@dataclass(frozen=True)
class SweepPoint:
    """One design point of a sweep."""

    label: str
    value: float
    result: InferenceResult

    @property
    def latency_ms(self) -> float:
        return self.result.latency_s * 1e3

    @property
    def power_w(self) -> float:
        return self.result.average_power_w

    @property
    def epb_nj(self) -> float:
        return self.result.energy_per_bit_j * 1e9


def sweep_wavelengths(
    model_name: str = "ResNet50",
    values: tuple[int, ...] = DEFAULT_WAVELENGTH_SWEEP,
    base_config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[SweepPoint]:
    """Latency/power/EPB of the SiPh platform vs wavelength count."""
    base = base_config or DEFAULT_PLATFORM
    cells = [
        (SIPH, model_name, "resipi", base.with_wavelengths(n_lambda))
        for n_lambda in values
    ]
    results = simulate_cells(cells, jobs=jobs, cache_dir=cache_dir)
    return [
        SweepPoint(label=f"{n_lambda} wavelengths", value=n_lambda,
                   result=result)
        for n_lambda, result in zip(values, results)
    ]


def _with_gateways_per_chiplet(config: PlatformConfig,
                               gateways: int) -> PlatformConfig:
    """Rebuild the MAC groups with a different gateway count per chiplet.

    Table 1's groups all have MAC counts divisible by 1, 2 and 4, so the
    default sweep values keep the inventory integral.  The memory
    chiplet's writer-gateway count scales along (2x the per-chiplet
    count, matching the Table 1 ratio of 8 memory gateways to 4 per
    compute chiplet) — that is the side that actually bounds read
    bandwidth.
    """
    groups = []
    for group in config.mac_groups:
        if group.macs_per_chiplet % gateways:
            raise ValueError(
                f"{group.kind}: {group.macs_per_chiplet} MACs cannot split "
                f"over {gateways} gateways"
            )
        groups.append(
            MacGroupConfig(
                kind=group.kind,
                vector_length=group.vector_length,
                kernel_size=group.kernel_size,
                n_chiplets=group.n_chiplets,
                macs_per_chiplet=group.macs_per_chiplet,
                macs_per_gateway=group.macs_per_chiplet // gateways,
            )
        )
    return replace(
        config,
        mac_groups=tuple(groups),
        n_memory_write_gateways=2 * gateways,
    )


def sweep_gateways(
    model_name: str = "ResNet50",
    values: tuple[int, ...] = DEFAULT_GATEWAY_SWEEP,
    base_config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[SweepPoint]:
    """SiPh platform vs gateways per compute chiplet."""
    base = base_config or DEFAULT_PLATFORM
    cells = [
        (SIPH, model_name, "resipi", _with_gateways_per_chiplet(base, g))
        for g in values
    ]
    results = simulate_cells(cells, jobs=jobs, cache_dir=cache_dir)
    return [
        SweepPoint(label=f"{gateways} gateways/chiplet", value=gateways,
                   result=result)
        for gateways, result in zip(values, results)
    ]


def mapping_ablation(
    model_names: tuple[str, ...] = ("ResNet50", "VGG16"),
    base_config: PlatformConfig | None = None,
) -> dict[tuple[str, str], InferenceResult]:
    """Spillover vs strict-kernel-match mapping on the SiPh platform.

    Quantifies how much of the 2.5D win depends on letting conv layers
    spill beyond their kernel-matched chiplets (DESIGN.md discusses why
    the paper's averages imply spillover).  Custom mappers are not part
    of the cache key scheme, so this study always simulates.
    """
    from ..core.accelerator import CrossLight25DSiPh
    from ..interposer.topology import build_floorplan
    from ..mapping.mapper import KernelMatchMapper

    base = base_config or DEFAULT_PLATFORM
    floorplan = build_floorplan(base)
    runner = ExperimentRunner(config=base)
    results = {}
    for strict in (False, True):
        label = "strict" if strict else "spillover"
        mapper = KernelMatchMapper(base, floorplan,
                                   strict_kernel_match=strict)
        platform = CrossLight25DSiPh(base, mapper=mapper)
        for model_name in model_names:
            results[(label, model_name)] = platform.run_workload(
                runner.workload(model_name)
            )
    return results


def controller_ablation(
    model_names: tuple[str, ...] = ("LeNet5", "ResNet50"),
    controllers: tuple[str, ...] = ("resipi", "prowaves", "static"),
    base_config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> dict[tuple[str, str], InferenceResult]:
    """Compare interposer reconfiguration policies (E10)."""
    base = base_config or DEFAULT_PLATFORM
    cells = [
        (SIPH, model_name, controller, base)
        for controller in controllers
        for model_name in model_names
    ]
    results = simulate_cells(cells, jobs=jobs, cache_dir=cache_dir)
    return {
        (cell[2], cell[1]): result
        for cell, result in zip(cells, results)
    }


def render_sweep(title: str, points: list[SweepPoint]) -> str:
    """Text table of a sweep."""
    lines = [
        title,
        f"{'design point':<24}{'latency(ms)':>14}{'power(W)':>12}"
        f"{'EPB(nJ/b)':>12}",
        "-" * 62,
    ]
    for point in points:
        lines.append(
            f"{point.label:<24}{point.latency_ms:>14.4f}"
            f"{point.power_w:>12.2f}{point.epb_nj:>12.3f}"
        )
    return "\n".join(lines)
