"""Sensitivity of the headline results to calibration knobs.

A reproduction whose conclusions hinge on one magic constant is fragile.
This study perturbs the documented calibration knobs (DESIGN.md §7) —
the electrical-interposer link derating, the monolithic design's DRAM
bandwidth and VDP inventory, and the HBM bandwidth — and recomputes the
four headline ratios, verifying the paper's qualitative conclusions
survive across the plausible parameter ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from ..config import DEFAULT_PLATFORM, PlatformConfig
from .runner import ExperimentRunner, parallel_map
from .table3 import Table3, build_table3


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline ratios under one perturbed configuration."""

    knob: str
    value: float
    latency_vs_mono: float
    epb_vs_mono: float
    latency_vs_elec: float
    epb_vs_elec: float

    @property
    def conclusions_hold(self) -> bool:
        """The paper's qualitative claims: SiPh wins everything."""
        return (
            self.latency_vs_mono > 1.0
            and self.epb_vs_mono > 1.0
            and self.latency_vs_elec > 1.0
            and self.epb_vs_elec > 1.0
        )


DEFAULT_KNOBS: dict[str, tuple[float, ...]] = {
    "mesh_link_efficiency": (0.05, 0.10, 0.20),
    "mono_dram_bandwidth_bps": (0.1e12, 0.2e12, 0.4e12),
    "hbm_internal_bandwidth_bps": (1.6e12, 3.2e12, 6.4e12),
    "mono_n_vdp_units": (8, 16, 32),
}
"""Perturbation grid: centre values are the defaults."""

_FAST_MODELS = ("LeNet5", "MobileNetV2", "ResNet50")
"""Model subset for the sweep (keeps the grid tractable; the two
largest models shift averages but not orderings)."""


def _ratios(knob: str, value: float, config: PlatformConfig,
            cache_dir: str | Path | None = None) -> SensitivityPoint:
    runner = ExperimentRunner(config=config, cache_dir=cache_dir)
    table: Table3 = build_table3(runner, models=_FAST_MODELS)
    return SensitivityPoint(
        knob=knob,
        value=float(value),
        latency_vs_mono=table.latency_gain_vs_monolithic,
        epb_vs_mono=table.epb_gain_vs_monolithic,
        latency_vs_elec=table.latency_gain_vs_electrical,
        epb_vs_elec=table.epb_gain_vs_electrical,
    )


def sensitivity_study(
    knobs: dict[str, tuple[float, ...]] | None = None,
    base_config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[SensitivityPoint]:
    """One-at-a-time perturbation study over the calibration knobs.

    Each perturbed configuration is an independent nine-cell Table 3
    rebuild, so the grid fans out whole points to worker processes;
    ``cache_dir`` lets repeated studies reuse each other's cells.
    """
    knobs = knobs or DEFAULT_KNOBS
    base = base_config or DEFAULT_PLATFORM
    tasks = [
        (knob, value, replace(base, **{knob: value}), cache_dir)
        for knob, values in knobs.items()
        for value in values
    ]
    return parallel_map(_ratios, tasks, jobs)


def render_sensitivity(points: list[SensitivityPoint]) -> str:
    """Text table of the study."""
    lines = [
        "Sensitivity of headline ratios to calibration knobs",
        f"{'knob':<30}{'value':>12}{'lat/mono':>10}{'EPB/mono':>10}"
        f"{'lat/elec':>10}{'EPB/elec':>10}{'holds':>7}",
        "-" * 89,
    ]
    for point in points:
        lines.append(
            f"{point.knob:<30}{point.value:>12.3g}"
            f"{point.latency_vs_mono:>10.1f}{point.epb_vs_mono:>10.1f}"
            f"{point.latency_vs_elec:>10.1f}{point.epb_vs_elec:>10.1f}"
            f"{'yes' if point.conclusions_hold else 'NO':>7}"
        )
    return "\n".join(lines)
