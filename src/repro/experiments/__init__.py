"""Experiment drivers regenerating every table and figure of the paper."""

from .calibration import calibration_report, shape_checks
from .dse import (
    controller_ablation,
    mapping_ablation,
    render_sweep,
    sweep_gateways,
    sweep_wavelengths,
)
from .fig7 import Fig7Series, fig7_all, fig7_series, render_fig7
from .export import (
    result_to_dict,
    results_to_csv,
    results_to_json,
    serving_result_to_dict,
    serving_results_to_csv,
    serving_results_to_json,
    table3_to_csv,
)
from .network_characterization import (
    characterize,
    characterize_all,
    render_characterization,
)
from .quantization_study import (
    QuantizationPoint,
    quantization_study,
    render_quantization_study,
)
from .roofline import (
    PlatformRoofline,
    operational_intensity,
    platform_rooflines,
    render_roofline,
    roofline_analysis,
)
from .runner import (
    MODEL_NAMES,
    PLATFORM_ORDER,
    ExperimentRunner,
    ResultCache,
    build_platform,
    cell_key,
    config_digest,
    parallel_map,
    run_cached,
    simulate_cells,
)
from .sensitivity import (
    SensitivityPoint,
    render_sensitivity,
    sensitivity_study,
)
from .serving_study import (
    ScenarioCell,
    ServingCell,
    latency_throughput_curve,
    render_serving_study,
    render_slo_summary,
    serving_study,
    simulate_scenario_cell,
    simulate_serving_cell,
    simulate_serving_cells,
    simulate_study_cells,
)
from .table3 import PAPER_TABLE3, Table3, build_table3, render_table3
from .tables import render_table1, render_table2

__all__ = [
    "calibration_report",
    "shape_checks",
    "controller_ablation",
    "mapping_ablation",
    "render_sweep",
    "sweep_gateways",
    "sweep_wavelengths",
    "Fig7Series",
    "fig7_all",
    "fig7_series",
    "render_fig7",
    "result_to_dict",
    "results_to_csv",
    "results_to_json",
    "table3_to_csv",
    "characterize",
    "characterize_all",
    "render_characterization",
    "PlatformRoofline",
    "operational_intensity",
    "platform_rooflines",
    "render_roofline",
    "roofline_analysis",
    "SensitivityPoint",
    "render_sensitivity",
    "sensitivity_study",
    "ScenarioCell",
    "ServingCell",
    "latency_throughput_curve",
    "render_serving_study",
    "render_slo_summary",
    "serving_study",
    "simulate_scenario_cell",
    "simulate_serving_cell",
    "simulate_serving_cells",
    "simulate_study_cells",
    "serving_result_to_dict",
    "serving_results_to_csv",
    "serving_results_to_json",
    "QuantizationPoint",
    "quantization_study",
    "render_quantization_study",
    "MODEL_NAMES",
    "PLATFORM_ORDER",
    "ExperimentRunner",
    "ResultCache",
    "build_platform",
    "cell_key",
    "config_digest",
    "parallel_map",
    "run_cached",
    "simulate_cells",
    "PAPER_TABLE3",
    "Table3",
    "build_table3",
    "render_table3",
    "render_table1",
    "render_table2",
]
