"""Quantisation study (extension, from the CrossLight follow-ups).

The paper's accelerator lineage includes heterogeneous quantisation [22]
(different weight bit-widths per layer) and fully/partially binarised
networks [24], [25].  This experiment measures how precision changes
interposer traffic, latency, power and energy-per-bit on the 2.5D
photonic platform — the deployment question those papers answer at the
device level.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.accelerator import CrossLight25DSiPh
from ..core.metrics import InferenceResult
from ..dnn import zoo
from ..dnn.quantization import QuantizationConfig
from ..dnn.workload import extract_workload
from .runner import CacheStats, ResultCache, cell_key, parallel_map


@dataclass(frozen=True)
class QuantizationPoint:
    """One precision configuration and its measured outcome."""

    scheme: str
    weight_bits_description: str
    traffic_bits: float
    result: InferenceResult


def quantization_schemes(n_layers: int) -> dict[str, QuantizationConfig]:
    """The precision ladder the study sweeps."""
    return {
        "uniform-8b": QuantizationConfig(),
        "heterogeneous-8/4b": QuantizationConfig.heterogeneous_front_heavy(
            n_layers
        ),
        "uniform-4b": QuantizationConfig(weight_bits=4, activation_bits=4),
        "binary (LightBulb-style)": QuantizationConfig.binary(),
    }


def _simulate_quant_point(model_name: str, quant: QuantizationConfig,
                          config: PlatformConfig
                          ) -> tuple[float, InferenceResult]:
    """Worker body: one precision point; returns (traffic, result)."""
    workload = extract_workload(zoo.build(model_name), quant)
    result = CrossLight25DSiPh(config).run_workload(workload)
    return workload.total_traffic_bits, result


def _quant_cell_key(model_name: str, quant: QuantizationConfig,
                    config: PlatformConfig) -> str:
    """Cache key extended with the quantisation scheme — points with the
    same platform config but different precisions must not collide."""
    return cell_key(
        "2.5D-CrossLight-SiPh", model_name, "resipi", config,
        extra={"quantization": asdict(quant)},
    )


def quantization_study(
    model_name: str = "ResNet50",
    config: PlatformConfig | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    stats: CacheStats | None = None,
) -> list[QuantizationPoint]:
    """Run the precision ladder on the 2.5D SiPh platform.

    Precision points are independent simulations: they fan out over
    worker processes and cache under keys that include the quantisation
    scheme.
    """
    config = config or DEFAULT_PLATFORM
    model = zoo.build(model_name)
    n_layers = len(model.compute_nodes())
    schemes = quantization_schemes(n_layers)
    cache = ResultCache(cache_dir) if cache_dir else None

    outcomes: dict[str, tuple[float, InferenceResult]] = {}
    pending: list[tuple[str, QuantizationConfig]] = []
    for scheme, quant in schemes.items():
        hit = (
            cache.get(_quant_cell_key(model_name, quant, config))
            if cache is not None else None
        )
        if hit is not None:
            # Traffic is recomputed from the workload on a hit: it is
            # cheap and not part of the pickled result.
            workload = extract_workload(model, quant)
            outcomes[scheme] = (workload.total_traffic_bits, hit)
        else:
            pending.append((scheme, quant))

    fresh = parallel_map(
        _simulate_quant_point,
        [(model_name, quant, config) for _, quant in pending],
        jobs,
    )
    for (scheme, quant), outcome in zip(pending, fresh):
        outcomes[scheme] = outcome
        if cache is not None:
            cache.put(_quant_cell_key(model_name, quant, config), outcome[1])
    if stats is not None:
        if cache is not None:
            stats.merge(cache, simulated=len(pending))
        else:
            stats.simulated += len(pending)

    points = []
    for scheme, quant in schemes.items():
        traffic_bits, result = outcomes[scheme]
        points.append(
            QuantizationPoint(
                scheme=scheme,
                weight_bits_description=(
                    f"{quant.weight_bits}b weights / "
                    f"{quant.activation_bits}b activations"
                ),
                traffic_bits=traffic_bits,
                result=result,
            )
        )
    return points


def render_quantization_study(points: list[QuantizationPoint]) -> str:
    """Text table of the study."""
    lines = [
        "Quantisation study (2.5D-CrossLight-SiPh)",
        f"{'scheme':<26}{'traffic(Mb)':>12}{'latency(ms)':>13}"
        f"{'power(W)':>10}{'energy(mJ)':>12}",
        "-" * 73,
    ]
    for point in points:
        result = point.result
        lines.append(
            f"{point.scheme:<26}{point.traffic_bits / 1e6:>12.1f}"
            f"{result.latency_s * 1e3:>13.4f}"
            f"{result.average_power_w:>10.2f}"
            f"{result.total_energy_j * 1e3:>12.3f}"
        )
    return "\n".join(lines)
