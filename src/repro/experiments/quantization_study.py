"""Quantisation study (extension, from the CrossLight follow-ups).

The paper's accelerator lineage includes heterogeneous quantisation [22]
(different weight bit-widths per layer) and fully/partially binarised
networks [24], [25].  This experiment measures how precision changes
interposer traffic, latency, power and energy-per-bit on the 2.5D
photonic platform — the deployment question those papers answer at the
device level.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.accelerator import CrossLight25DSiPh
from ..core.metrics import InferenceResult
from ..dnn import zoo
from ..dnn.quantization import QuantizationConfig
from ..dnn.workload import extract_workload


@dataclass(frozen=True)
class QuantizationPoint:
    """One precision configuration and its measured outcome."""

    scheme: str
    weight_bits_description: str
    traffic_bits: float
    result: InferenceResult


def quantization_schemes(n_layers: int) -> dict[str, QuantizationConfig]:
    """The precision ladder the study sweeps."""
    return {
        "uniform-8b": QuantizationConfig(),
        "heterogeneous-8/4b": QuantizationConfig.heterogeneous_front_heavy(
            n_layers
        ),
        "uniform-4b": QuantizationConfig(weight_bits=4, activation_bits=4),
        "binary (LightBulb-style)": QuantizationConfig.binary(),
    }


def quantization_study(
    model_name: str = "ResNet50",
    config: PlatformConfig | None = None,
) -> list[QuantizationPoint]:
    """Run the precision ladder on the 2.5D SiPh platform."""
    config = config or DEFAULT_PLATFORM
    model = zoo.build(model_name)
    n_layers = len(model.compute_nodes())
    platform = CrossLight25DSiPh(config)
    points = []
    for scheme, quant in quantization_schemes(n_layers).items():
        workload = extract_workload(model, quant)
        result = platform.run_workload(workload)
        points.append(
            QuantizationPoint(
                scheme=scheme,
                weight_bits_description=(
                    f"{quant.weight_bits}b weights / "
                    f"{quant.activation_bits}b activations"
                ),
                traffic_bits=workload.total_traffic_bits,
                result=result,
            )
        )
    return points


def render_quantization_study(points: list[QuantizationPoint]) -> str:
    """Text table of the study."""
    lines = [
        "Quantisation study (2.5D-CrossLight-SiPh)",
        f"{'scheme':<26}{'traffic(Mb)':>12}{'latency(ms)':>13}"
        f"{'power(W)':>10}{'energy(mJ)':>12}",
        "-" * 73,
    ]
    for point in points:
        result = point.result
        lines.append(
            f"{point.scheme:<26}{point.traffic_bits / 1e6:>12.1f}"
            f"{result.latency_s * 1e3:>13.4f}"
            f"{result.average_power_w:>10.2f}"
            f"{result.total_energy_j * 1e3:>12.3f}"
        )
    return "\n".join(lines)
