"""Result export: JSON / CSV serialisation of experiment outputs.

Downstream users plot these tables; the renderers in the other modules
print them.  Exports are plain-stdlib (json/csv) and deterministic.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from ..core.metrics import InferenceResult
from ..serving.metrics import ClusterResult, ServingResult
from .table3 import Table3

RESULT_FIELDS = (
    "platform",
    "model",
    "batch_size",
    "latency_s",
    "average_power_w",
    "total_energy_j",
    "energy_per_bit_j",
    "traffic_bits",
    "reconfigurations",
)
"""Columns exported for every inference result."""


def result_to_dict(result: InferenceResult) -> dict:
    """Flatten one result to a JSON-safe dictionary."""
    record = {field: getattr(result, field) for field in RESULT_FIELDS}
    record["energy_breakdown_j"] = {
        "network_static": result.energy.network_static_j,
        "network_dynamic": result.energy.network_dynamic_j,
        "compute_static": result.energy.compute_static_j,
        "compute_dynamic": result.energy.compute_dynamic_j,
        "logic_static": result.energy.logic_static_j,
    }
    record["layer_timeline"] = [
        {
            "name": timing.name,
            "start_s": timing.start_s,
            "end_s": timing.end_s,
            "chiplets": list(timing.chiplets),
        }
        for timing in result.layer_timeline
    ]
    record["channel_utilization"] = [
        {
            "name": stat.name,
            "utilization": stat.utilization,
            "busy_time_s": stat.busy_time_s,
            "bits_transferred": stat.bits_transferred,
            "transfer_count": stat.transfer_count,
            "queue_length": stat.queue_length,
        }
        for stat in result.channel_stats
    ]
    return record


def results_to_json(results: Iterable[InferenceResult],
                    indent: int = 2) -> str:
    """Serialise results to a JSON array."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_to_csv(results: Iterable[InferenceResult]) -> str:
    """Serialise the scalar columns of results to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(RESULT_FIELDS)
    for result in results:
        writer.writerow([getattr(result, field) for field in RESULT_FIELDS])
    return buffer.getvalue()


SERVING_FIELDS = (
    "platform",
    "model",
    "controller",
    "policy",
    "arrival_kind",
    "offered_rps",
    "goodput_rps",
    "requests_injected",
    "requests_completed",
    "mean_batch_size",
    "mean_inflight",
    "mean_compute_utilization",
    "reconfigurations",
    "energy_per_request_j",
    "peak_channel_utilization",
    "saturated",
    "requests_shed",
    "slo_violations",
    "slo_attainment",
    "time_degraded_s",
    "availability",
    "mttr_s",
    "retry_amplification",
    "hedge_win_rate",
    "wasted_attempts",
    "tokens_generated",
    "tokens_per_s",
    "kv_refusals",
    "decode_remaps",
)
"""Scalar columns exported for every serving result."""


def _latency_dict(profile) -> dict:
    return {
        "mean": profile.mean_s,
        "p50": profile.p50_s,
        "p95": profile.p95_s,
        "p99": profile.p99_s,
        "max": profile.max_s,
    }


def _resilience_dict(stats) -> "dict | None":
    """The lifecycle ledger as a JSON record (``None`` when the run
    had no resilience layer)."""
    if stats is None:
        return None
    return {
        "requests": stats.requests,
        "attempts": stats.attempts,
        "retries": stats.retries,
        "hedges": stats.hedges,
        "hedge_wins": stats.hedge_wins,
        "timeouts": stats.timeouts,
        "cancelled": stats.cancelled,
        "gave_up": stats.gave_up,
        "budget_denied": stats.budget_denied,
        "retry_amplification": stats.retry_amplification,
        "hedge_win_rate": stats.hedge_win_rate,
        "wasted_attempts": stats.wasted_attempts,
        "retry_causes": dict(stats.retry_causes),
    }


def _fidelity_dict(report) -> "dict | None":
    """The hybrid-fidelity error-budget block (``None`` on classic
    full-DES results)."""
    if report is None:
        return None
    return {
        "mode_requested": report.mode_requested,
        "mode_used": report.mode_used,
        "error_budget": report.error_budget,
        "calibration_s": report.calibration_s,
        "calibration_requests": report.calibration_requests,
        "p50_rel_err": report.p50_rel_err,
        "p99_rel_err": report.p99_rel_err,
        "goodput_rel_err": report.goodput_rel_err,
        "ttft_rel_err": report.ttft_rel_err,
        "token_p99_rel_err": report.token_p99_rel_err,
        "within_budget": report.within_budget,
        "warm_forked": report.warm_forked,
    }


def _fidelity_csv_tail(result) -> list:
    """(mode_used, p99_rel_err, ttft_rel_err, token_p99_rel_err) CSV
    columns; blank on classic runs, and the sequence errors stay blank
    on single-step fluid runs."""
    if result.fidelity is None:
        return ["", "", "", ""]
    report = result.fidelity
    return [
        report.mode_used,
        report.p99_rel_err,
        report.ttft_rel_err if report.ttft_rel_err is not None else "",
        (report.token_p99_rel_err
         if report.token_p99_rel_err is not None else ""),
    ]


def _telemetry_dict(result) -> "dict | None":
    """The telemetry block: counters, histograms and the gauge time
    series (``None`` on untelemetered results; read with ``getattr``
    so pre-telemetry pickles export unchanged)."""
    summary = getattr(result, "telemetry", None)
    if summary is None:
        return None
    return {
        "policy": summary.policy_label,
        "sample_rate": summary.sample_rate,
        "sampled_requests": summary.sampled_requests,
        "total_requests": summary.total_requests,
        "span_count": summary.span_count,
        "instant_count": len(summary.instants),
        "counters": dict(summary.counters),
        "histograms": {
            name: [
                {"le": upper, "count": count}
                for upper, count in buckets
            ]
            for name, buckets in summary.histograms
        },
        "series": {
            name: [{"t_s": at_s, "value": value}
                   for at_s, value in samples]
            for name, samples in summary.series
        },
    }


def _incidents_list(incidents) -> list[dict]:
    """Per-incident availability records (empty when fault-free)."""
    return [
        {
            "node": incident.node,
            "start_s": incident.start_s,
            "detected_s": incident.detected_s,
            "end_s": incident.end_s,
            "repair_s": incident.repair_s,
            "detection_lag_s": incident.detection_lag_s,
            "resolved": incident.resolved,
        }
        for incident in incidents
    ]


def _fault_windows_list(windows) -> list[dict]:
    """Windowed before/during/after stats, shared by both exports."""
    return [
        {
            "label": window.label,
            "start_s": window.start_s,
            "end_s": window.end_s,
            "completed": window.completed,
            "shed": window.shed,
            "slo_violations": window.slo_violations,
            "slo_attainment": window.slo_attainment,
            "goodput_rps": window.goodput_rps,
            "latency_s": _latency_dict(window.latency),
        }
        for window in windows
    ]


def _sequence_dict(result) -> "dict | None":
    """The autoregressive token-metric block (``None`` on single-step
    serving results)."""
    if not getattr(result, "is_sequence_run", False):
        return None
    return {
        "ttft_s": _latency_dict(result.ttft) if result.ttft else None,
        "token_latency_s": (
            _latency_dict(result.token_latency)
            if result.token_latency else None
        ),
        "tokens_generated": result.tokens_generated,
        "tokens_per_s": result.tokens_per_s,
        "kv_refusals": result.kv_refusals,
        "kv_peak_bits": result.kv_peak_bits,
        "decode_remaps": result.decode_remaps,
    }


def _sequence_csv_tail(result) -> list:
    """(ttft_p50_s, ttft_p99_s, token_p99_s) columns; blank when the
    run produced no tokens."""
    if not getattr(result, "is_sequence_run", False):
        return ["", "", ""]
    ttft = result.ttft
    token = result.token_latency
    return [
        ttft.p50_s if ttft else "",
        ttft.p99_s if ttft else "",
        token.p99_s if token else "",
    ]


def _per_model_list(per_model) -> list[dict]:
    """Per-tenant stat records, shared by serving and cluster exports."""
    return [
        {
            "model": stats.model,
            "slo_s": stats.slo_s,
            "completed": stats.completed,
            "shed": stats.shed,
            "quota_denied": stats.quota_denied,
            "slo_violations": stats.slo_violations,
            "slo_attainment": stats.slo_attainment,
            "goodput_rps": stats.goodput_rps,
            "latency_s": _latency_dict(stats.latency),
        }
        for stats in per_model
    ]


def serving_result_to_dict(result: ServingResult) -> dict:
    """Flatten one serving result to a JSON-safe dictionary."""
    record = {field: getattr(result, field) for field in SERVING_FIELDS}
    record["per_model"] = _per_model_list(result.per_model)
    record["latency_s"] = _latency_dict(result.latency)
    record["queue_delay_s"] = _latency_dict(result.queue_delay)
    record["channel_utilization"] = [
        {
            "name": stat.name,
            "utilization": stat.utilization,
            "bits_transferred": stat.bits_transferred,
        }
        for stat in result.channel_stats
    ]
    record["hazard_events"] = [
        {
            "kind": event.kind,
            "start_s": event.start_s,
            "end_s": event.end_s,
            "memory_gateways_delta": event.memory_gateways_delta,
            "chiplet_gateways_delta": event.chiplet_gateways_delta,
            "wavelength_fraction": event.wavelength_fraction,
        }
        for event in result.hazard_events
    ]
    record["fault_windows"] = _fault_windows_list(result.windows)
    record["resilience"] = _resilience_dict(result.resilience)
    record["incidents"] = _incidents_list(result.incidents)
    record["fidelity"] = _fidelity_dict(result.fidelity)
    record["sequence"] = _sequence_dict(result)
    record["telemetry"] = _telemetry_dict(result)
    return record


def serving_results_to_json(results: Iterable[ServingResult],
                            indent: int = 2) -> str:
    """Serialise a latency–throughput sweep to a JSON array."""
    return json.dumps(
        [serving_result_to_dict(r) for r in results], indent=indent
    )


def serving_results_to_csv(results: Iterable[ServingResult]) -> str:
    """Serialise the scalar serving columns plus tail latencies to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(SERVING_FIELDS + ("p50_s", "p95_s", "p99_s",
                                      "fidelity_mode", "fidelity_p99_err",
                                      "fidelity_ttft_err",
                                      "fidelity_token_p99_err",
                                      "ttft_p50_s", "ttft_p99_s",
                                      "token_p99_s"))
    for result in results:
        writer.writerow(
            [getattr(result, field) for field in SERVING_FIELDS]
            + [result.latency.p50_s, result.latency.p95_s,
               result.latency.p99_s]
            + _fidelity_csv_tail(result)
            + _sequence_csv_tail(result)
        )
    return buffer.getvalue()


CLUSTER_FIELDS = (
    "platform",
    "model",
    "controller",
    "router",
    "policy",
    "arrival_kind",
    "n_nodes",
    "offered_rps",
    "goodput_rps",
    "requests_injected",
    "requests_completed",
    "requests_shed",
    "requests_rerouted",
    "load_imbalance",
    "energy_per_request_j",
    "slo_violations",
    "slo_attainment",
    "availability",
    "mttr_s",
    "retry_amplification",
    "hedge_win_rate",
    "wasted_attempts",
)
"""Scalar columns exported for every cluster (fleet) result."""


def cluster_result_to_dict(result: ClusterResult) -> dict:
    """Flatten one fleet result to a JSON-safe dictionary."""
    record = {field: getattr(result, field) for field in CLUSTER_FIELDS}
    record["latency_s"] = _latency_dict(result.latency)
    record["queue_delay_s"] = _latency_dict(result.queue_delay)
    record["per_node"] = [
        {
            "node": stats.node,
            "state": stats.state,
            "requests_completed": stats.requests_completed,
            "requests_shed": stats.requests_shed,
            "rerouted_away": stats.rerouted_away,
            "goodput_rps": stats.goodput_rps,
            "mean_compute_utilization": stats.mean_compute_utilization,
            "latency_s": _latency_dict(stats.latency),
        }
        for stats in result.per_node
    ]
    record["per_model"] = _per_model_list(result.per_model)
    record["node_events"] = [
        {
            "kind": event.kind,
            "node": event.node,
            "at_s": event.at_s,
            "rerouted": event.rerouted,
        }
        for event in result.node_events
    ]
    record["fault_windows"] = _fault_windows_list(result.windows)
    record["resilience"] = _resilience_dict(result.resilience)
    record["incidents"] = _incidents_list(result.incidents)
    record["fidelity"] = _fidelity_dict(result.fidelity)
    record["telemetry"] = _telemetry_dict(result)
    return record


def cluster_results_to_json(results: Iterable[ClusterResult],
                            indent: int = 2) -> str:
    """Serialise a fleet sweep to a JSON array."""
    return json.dumps(
        [cluster_result_to_dict(r) for r in results], indent=indent
    )


_CLUSTER_CSV_HEADER = (
    CLUSTER_FIELDS
    + ("p50_s", "p95_s", "p99_s",
       "fidelity_mode", "fidelity_p99_err",
       "fidelity_ttft_err", "fidelity_token_p99_err",
       "node", "node_state", "node_completed", "node_shed",
       "node_rerouted_away", "node_goodput_rps", "node_utilization",
       "node_p99_s")
)


def _write_cluster_rows(writer, result: "ClusterResult | ServingResult"
                        ) -> None:
    """Cluster-schema rows for one result: aggregate, then per node.

    A :class:`ServingResult` exports as the degenerate single-node
    fleet (``n_nodes`` 1, router ``-``, nothing rerouted), so a sweep
    mixing 1-replica and multi-replica points stays one schema.
    """
    if isinstance(result, ClusterResult):
        scalars = [getattr(result, field) for field in CLUSTER_FIELDS]
        per_node = result.per_node
    else:
        single = {
            "router": "-",
            "n_nodes": 1,
            "requests_rerouted": 0,
            "load_imbalance": 1.0,
        }
        scalars = [
            single.get(field, getattr(result, field, ""))
            for field in CLUSTER_FIELDS
        ]
        per_node = ()
    tails = (
        [result.latency.p50_s, result.latency.p95_s, result.latency.p99_s]
        + _fidelity_csv_tail(result)
    )
    writer.writerow(scalars + tails + [""] * 8)
    for stats in per_node:
        writer.writerow(
            scalars + tails
            + [stats.node, stats.state, stats.requests_completed,
               stats.requests_shed, stats.rerouted_away,
               stats.goodput_rps, stats.mean_compute_utilization,
               stats.latency.p99_s]
        )


def cluster_results_to_csv(results: Iterable[ClusterResult]) -> str:
    """Fleet CSV: aggregate scalars + tail latencies, then one row per
    node (long format — the ``node`` column is empty on aggregate
    rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CLUSTER_CSV_HEADER)
    for result in results:
        _write_cluster_rows(writer, result)
    return buffer.getvalue()


def study_results_to_json(results: Iterable, indent: int = 2) -> str:
    """Serialise a mixed serving/cluster result list to a JSON array."""
    records = []
    for result in results:
        if isinstance(result, ClusterResult):
            records.append(cluster_result_to_dict(result))
        else:
            records.append(serving_result_to_dict(result))
    return json.dumps(records, indent=indent)


def study_results_to_csv(results: Iterable) -> str:
    """Serialise a mixed serving/cluster result list to CSV.

    Homogeneous lists use the matching schema; as soon as any fleet
    result is present every row exports in the cluster schema (serving
    results become degenerate single-node fleets), so one file is
    always one parseable table.
    """
    materialised = list(results)
    if not any(isinstance(r, ClusterResult) for r in materialised):
        return serving_results_to_csv(materialised)
    return cluster_results_to_csv(materialised)


def table3_to_csv(table: Table3) -> str:
    """Serialise a regenerated Table 3 to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("platform", "power_w", "latency_ms", "epb_nj_per_bit"))
    for row in table.rows:
        writer.writerow(
            (row.platform, row.power_w, row.latency_ms, row.epb_nj_per_bit)
        )
    return buffer.getvalue()


def write_text(path: str, content: str) -> None:
    """Write an export to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
