"""Result export: JSON / CSV serialisation of experiment outputs.

Downstream users plot these tables; the renderers in the other modules
print them.  Exports are plain-stdlib (json/csv) and deterministic.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from ..core.metrics import InferenceResult
from ..serving.metrics import ServingResult
from .table3 import Table3

RESULT_FIELDS = (
    "platform",
    "model",
    "batch_size",
    "latency_s",
    "average_power_w",
    "total_energy_j",
    "energy_per_bit_j",
    "traffic_bits",
    "reconfigurations",
)
"""Columns exported for every inference result."""


def result_to_dict(result: InferenceResult) -> dict:
    """Flatten one result to a JSON-safe dictionary."""
    record = {field: getattr(result, field) for field in RESULT_FIELDS}
    record["energy_breakdown_j"] = {
        "network_static": result.energy.network_static_j,
        "network_dynamic": result.energy.network_dynamic_j,
        "compute_static": result.energy.compute_static_j,
        "compute_dynamic": result.energy.compute_dynamic_j,
        "logic_static": result.energy.logic_static_j,
    }
    record["layer_timeline"] = [
        {
            "name": timing.name,
            "start_s": timing.start_s,
            "end_s": timing.end_s,
            "chiplets": list(timing.chiplets),
        }
        for timing in result.layer_timeline
    ]
    record["channel_utilization"] = [
        {
            "name": stat.name,
            "utilization": stat.utilization,
            "busy_time_s": stat.busy_time_s,
            "bits_transferred": stat.bits_transferred,
            "transfer_count": stat.transfer_count,
            "queue_length": stat.queue_length,
        }
        for stat in result.channel_stats
    ]
    return record


def results_to_json(results: Iterable[InferenceResult],
                    indent: int = 2) -> str:
    """Serialise results to a JSON array."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_to_csv(results: Iterable[InferenceResult]) -> str:
    """Serialise the scalar columns of results to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(RESULT_FIELDS)
    for result in results:
        writer.writerow([getattr(result, field) for field in RESULT_FIELDS])
    return buffer.getvalue()


SERVING_FIELDS = (
    "platform",
    "model",
    "controller",
    "policy",
    "arrival_kind",
    "offered_rps",
    "goodput_rps",
    "requests_injected",
    "requests_completed",
    "mean_batch_size",
    "mean_inflight",
    "mean_compute_utilization",
    "reconfigurations",
    "energy_per_request_j",
    "peak_channel_utilization",
    "saturated",
    "requests_shed",
    "slo_violations",
    "slo_attainment",
    "time_degraded_s",
)
"""Scalar columns exported for every serving result."""


def serving_result_to_dict(result: ServingResult) -> dict:
    """Flatten one serving result to a JSON-safe dictionary."""
    record = {field: getattr(result, field) for field in SERVING_FIELDS}
    record["per_model"] = [
        {
            "model": stats.model,
            "slo_s": stats.slo_s,
            "completed": stats.completed,
            "shed": stats.shed,
            "slo_violations": stats.slo_violations,
            "slo_attainment": stats.slo_attainment,
            "goodput_rps": stats.goodput_rps,
            "latency_s": {
                "mean": stats.latency.mean_s,
                "p50": stats.latency.p50_s,
                "p95": stats.latency.p95_s,
                "p99": stats.latency.p99_s,
                "max": stats.latency.max_s,
            },
        }
        for stats in result.per_model
    ]
    record["latency_s"] = {
        "mean": result.latency.mean_s,
        "p50": result.latency.p50_s,
        "p95": result.latency.p95_s,
        "p99": result.latency.p99_s,
        "max": result.latency.max_s,
    }
    record["queue_delay_s"] = {
        "mean": result.queue_delay.mean_s,
        "p50": result.queue_delay.p50_s,
        "p95": result.queue_delay.p95_s,
        "p99": result.queue_delay.p99_s,
        "max": result.queue_delay.max_s,
    }
    record["channel_utilization"] = [
        {
            "name": stat.name,
            "utilization": stat.utilization,
            "bits_transferred": stat.bits_transferred,
        }
        for stat in result.channel_stats
    ]
    record["hazard_events"] = [
        {
            "kind": event.kind,
            "start_s": event.start_s,
            "end_s": event.end_s,
            "memory_gateways_delta": event.memory_gateways_delta,
            "chiplet_gateways_delta": event.chiplet_gateways_delta,
            "wavelength_fraction": event.wavelength_fraction,
        }
        for event in result.hazard_events
    ]
    record["fault_windows"] = [
        {
            "label": window.label,
            "start_s": window.start_s,
            "end_s": window.end_s,
            "completed": window.completed,
            "shed": window.shed,
            "slo_violations": window.slo_violations,
            "slo_attainment": window.slo_attainment,
            "goodput_rps": window.goodput_rps,
            "latency_s": {
                "mean": window.latency.mean_s,
                "p50": window.latency.p50_s,
                "p95": window.latency.p95_s,
                "p99": window.latency.p99_s,
                "max": window.latency.max_s,
            },
        }
        for window in result.windows
    ]
    return record


def serving_results_to_json(results: Iterable[ServingResult],
                            indent: int = 2) -> str:
    """Serialise a latency–throughput sweep to a JSON array."""
    return json.dumps(
        [serving_result_to_dict(r) for r in results], indent=indent
    )


def serving_results_to_csv(results: Iterable[ServingResult]) -> str:
    """Serialise the scalar serving columns plus tail latencies to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(SERVING_FIELDS + ("p50_s", "p95_s", "p99_s"))
    for result in results:
        writer.writerow(
            [getattr(result, field) for field in SERVING_FIELDS]
            + [result.latency.p50_s, result.latency.p95_s,
               result.latency.p99_s]
        )
    return buffer.getvalue()


def table3_to_csv(table: Table3) -> str:
    """Serialise a regenerated Table 3 to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("platform", "power_w", "latency_ms", "epb_nj_per_bit"))
    for row in table.rows:
        writer.writerow(
            (row.platform, row.power_w, row.latency_ms, row.epb_nj_per_bit)
        )
    return buffer.getvalue()


def write_text(path: str, content: str) -> None:
    """Write an export to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
