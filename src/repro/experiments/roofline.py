"""Roofline analysis: where the platform crossovers fall.

Classic roofline methodology applied to the three simulated platforms:
each platform is a (peak compute, memory/interposer bandwidth) pair,
each model an operational intensity (MACs per interposer byte), and the
attainable throughput is ``min(peak, intensity * bandwidth)``.  The
ridge point — the intensity where a platform turns compute-bound —
explains the Fig. 7 shapes: the electrical interposer's ridge sits far
to the right of every DNN, so it is bandwidth-starved everywhere, while
the photonic interposer's ridge sits left of the big CNNs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..dnn.workload import InferenceWorkload
from ..errors import ConfigurationError


@dataclass(frozen=True)
class PlatformRoofline:
    """One platform's roofline parameters."""

    name: str
    peak_macs_per_s: float
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.peak_macs_per_s <= 0 or self.bandwidth_bps <= 0:
            raise ConfigurationError("roofline parameters must be positive")

    @property
    def ridge_intensity_macs_per_bit(self) -> float:
        """Operational intensity where compute and bandwidth bound meet."""
        return self.peak_macs_per_s / self.bandwidth_bps

    def attainable_macs_per_s(self, intensity_macs_per_bit: float) -> float:
        """Roofline-attainable throughput at a given intensity."""
        if intensity_macs_per_bit <= 0:
            raise ConfigurationError("intensity must be positive")
        return min(
            self.peak_macs_per_s,
            intensity_macs_per_bit * self.bandwidth_bps,
        )

    def is_compute_bound(self, intensity_macs_per_bit: float) -> bool:
        return intensity_macs_per_bit >= self.ridge_intensity_macs_per_bit


def platform_rooflines(
    config: PlatformConfig | None = None,
) -> dict[str, PlatformRoofline]:
    """Rooflines of the three simulated platforms from the live config."""
    config = config or DEFAULT_PLATFORM
    photonic_bw = min(
        config.n_memory_write_gateways * config.gateway_bandwidth_bps,
        config.hbm_internal_bandwidth_bps,
    )
    return {
        "CrossLight": PlatformRoofline(
            name="CrossLight",
            peak_macs_per_s=config.mono_peak_mac_throughput_per_s,
            bandwidth_bps=min(config.mono_noc_bandwidth_bps,
                              config.mono_dram_bandwidth_bps
                              + config.mono_noc_bandwidth_bps),
        ),
        "2.5D-CrossLight-Elec": PlatformRoofline(
            name="2.5D-CrossLight-Elec",
            peak_macs_per_s=config.peak_mac_throughput_per_s,
            bandwidth_bps=config.mesh_effective_link_bandwidth_bps,
        ),
        "2.5D-CrossLight-SiPh": PlatformRoofline(
            name="2.5D-CrossLight-SiPh",
            peak_macs_per_s=config.peak_mac_throughput_per_s,
            bandwidth_bps=photonic_bw,
        ),
    }


def operational_intensity(workload: InferenceWorkload) -> float:
    """MACs per bit of interposer traffic for one inference."""
    if workload.total_traffic_bits <= 0:
        raise ConfigurationError("workload moves no data")
    return workload.total_macs / workload.total_traffic_bits


@dataclass(frozen=True)
class RooflinePoint:
    """One (model, platform) roofline placement."""

    model: str
    platform: str
    intensity_macs_per_bit: float
    attainable_macs_per_s: float
    compute_bound: bool


def roofline_analysis(
    workloads: dict[str, InferenceWorkload],
    config: PlatformConfig | None = None,
) -> list[RooflinePoint]:
    """Place every model on every platform's roofline."""
    rooflines = platform_rooflines(config)
    points = []
    for model_name, workload in workloads.items():
        intensity = operational_intensity(workload)
        for platform_name, roofline in rooflines.items():
            points.append(
                RooflinePoint(
                    model=model_name,
                    platform=platform_name,
                    intensity_macs_per_bit=intensity,
                    attainable_macs_per_s=roofline.attainable_macs_per_s(
                        intensity
                    ),
                    compute_bound=roofline.is_compute_bound(intensity),
                )
            )
    return points


def render_roofline(points: list[RooflinePoint],
                    config: PlatformConfig | None = None) -> str:
    """Text table of the analysis plus the platform ridge points."""
    rooflines = platform_rooflines(config)
    lines = ["Platform rooflines (ridge = MACs/bit where compute binds)"]
    for roofline in rooflines.values():
        lines.append(
            f"  {roofline.name:<24} peak "
            f"{roofline.peak_macs_per_s / 1e12:6.2f} TMAC/s, bandwidth "
            f"{roofline.bandwidth_bps / 1e12:6.3f} Tb/s, ridge "
            f"{roofline.ridge_intensity_macs_per_bit:8.1f} MAC/bit"
        )
    lines.append("")
    lines.append(
        f"{'model':<14}{'platform':<24}{'MAC/bit':>9}"
        f"{'attainable':>14}{'bound':>10}"
    )
    lines.append("-" * 71)
    for point in points:
        lines.append(
            f"{point.model:<14}{point.platform:<24}"
            f"{point.intensity_macs_per_bit:>9.1f}"
            f"{point.attainable_macs_per_s / 1e12:>11.3f} T"
            f"{'compute' if point.compute_bound else 'memory':>10}"
        )
    return "\n".join(lines)
