"""Calibration report: paper-vs-measured for every reproduced artefact.

Regenerates every table/figure and prints the paper's value next to the
model's value, plus pass/fail against the *shape* criteria of DESIGN.md
(orderings and ratio bands rather than absolute watts/milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass

from .fig7 import fig7_all
from .runner import ExperimentRunner
from .table3 import PAPER_TABLE3, build_table3, render_table3


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim of the paper and whether we reproduce it."""

    claim: str
    passed: bool
    detail: str


def shape_checks(runner: ExperimentRunner | None = None) -> list[ShapeCheck]:
    """Evaluate every qualitative claim from Section VI."""
    runner = runner or ExperimentRunner()
    table = build_table3(runner)
    panels = fig7_all(runner)
    checks = []

    mono = table.row("CrossLight")
    elec = table.row("2.5D-CrossLight-Elec")
    siph = table.row("2.5D-CrossLight-SiPh")

    checks.append(ShapeCheck(
        claim="SiPh has lower average latency than monolithic (paper 6.6x)",
        passed=2.0 <= table.latency_gain_vs_monolithic <= 15.0,
        detail=f"measured {table.latency_gain_vs_monolithic:.1f}x",
    ))
    checks.append(ShapeCheck(
        claim="SiPh has lower average EPB than monolithic (paper 2.8x)",
        passed=1.5 <= table.epb_gain_vs_monolithic <= 6.0,
        detail=f"measured {table.epb_gain_vs_monolithic:.1f}x",
    ))
    checks.append(ShapeCheck(
        claim="SiPh has lower average latency than electrical (paper 34x)",
        passed=15.0 <= table.latency_gain_vs_electrical <= 70.0,
        detail=f"measured {table.latency_gain_vs_electrical:.1f}x",
    ))
    checks.append(ShapeCheck(
        claim="SiPh has lower average EPB than electrical (paper 15.8x)",
        passed=6.0 <= table.epb_gain_vs_electrical <= 35.0,
        detail=f"measured {table.epb_gain_vs_electrical:.1f}x",
    ))
    checks.append(ShapeCheck(
        claim="power ordering: electrical < monolithic < photonic",
        passed=elec.power_w < mono.power_w < siph.power_w,
        detail=(
            f"{elec.power_w:.1f} W < {mono.power_w:.1f} W "
            f"< {siph.power_w:.1f} W"
        ),
    ))

    # LeNet5: SiPh loses its EPB edge on the tiny model (Fig. 7 prose).
    epb = panels["epb"]
    lenet_siph = epb.bar("LeNet5", "2.5D-CrossLight-SiPh")
    checks.append(ShapeCheck(
        claim="LeNet5: SiPh EPB advantage vanishes (>= 0.8x of monolithic)",
        passed=lenet_siph >= 0.8,
        detail=f"normalized EPB {lenet_siph:.2f} (CrossLight = 1.0)",
    ))
    # Large models: SiPh wins EPB clearly.
    for model in ("ResNet50", "DenseNet121", "VGG16"):
        value = epb.bar(model, "2.5D-CrossLight-SiPh")
        checks.append(ShapeCheck(
            claim=f"{model}: SiPh EPB well below monolithic",
            passed=value < 0.7,
            detail=f"normalized EPB {value:.2f}",
        ))
    # SiPh power is comparatively lower for LeNet5 than for large models
    # (gateway deactivation under low traffic).
    power = panels["power"]
    lenet_w = power.absolute["LeNet5"]["2.5D-CrossLight-SiPh"]
    vgg_w = power.absolute["VGG16"]["2.5D-CrossLight-SiPh"]
    checks.append(ShapeCheck(
        claim="LeNet5 SiPh power notably below its large-model power",
        passed=lenet_w < 0.85 * vgg_w,
        detail=f"{lenet_w:.1f} W vs {vgg_w:.1f} W on VGG16",
    ))

    # Table 3 qualitative ranking: SiPh best latency + EPB of all rows.
    best_latency = min(row.latency_ms for row in table.rows)
    best_epb = min(row.epb_nj_per_bit for row in table.rows)
    checks.append(ShapeCheck(
        claim="SiPh has the best latency and EPB of all ten platforms",
        passed=siph.latency_ms == best_latency
        and siph.epb_nj_per_bit == best_epb,
        detail=f"latency {siph.latency_ms:.3f} ms, EPB "
        f"{siph.epb_nj_per_bit:.3f} nJ/b",
    ))
    return checks


def calibration_report(runner: ExperimentRunner | None = None) -> str:
    """Full paper-vs-measured report."""
    runner = runner or ExperimentRunner()
    table = build_table3(runner)
    lines = [render_table3(table), ""]
    lines.append("Shape checks (paper claims reproduced?)")
    lines.append("-" * 72)
    for check in shape_checks(runner):
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"[{status}] {check.claim}: {check.detail}")
    lines.append("")
    lines.append(
        "Note: absolute watts/ms depend on the authors' unpublished "
        "simulator internals; PAPER_TABLE3 entries are shown for "
        "side-by-side comparison, shape checks are the reproduction "
        "criteria (DESIGN.md section 4)."
    )
    return "\n".join(lines)


__all__ = [
    "PAPER_TABLE3",
    "ShapeCheck",
    "shape_checks",
    "calibration_report",
]
