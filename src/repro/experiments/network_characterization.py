"""Open-loop network characterisation: latency-vs-load curves.

Standard NoC methodology (as in the PROWAVES/ReSiPI/DeFT evaluations):
inject synthetic traffic at increasing offered loads and record mean
message latency and delivered throughput for each fabric.  Locates each
interposer's saturation point independently of any DNN workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..interposer.electrical.mesh import ElectricalMeshFabric
from ..interposer.photonic.awgr import AWGRInterposerFabric
from ..interposer.photonic.controllers import (
    ReSiPIController,
    StaticController,
)
from ..interposer.photonic.fabric import PhotonicInterposerFabric
from ..interposer.topology import build_floorplan
from ..sim.core import Environment
from ..sim.traffic import TrafficGenerator, TrafficPattern, TrafficReport

FABRIC_KINDS = ("photonic-resipi", "photonic-static", "awgr", "electrical")


@dataclass(frozen=True)
class LoadPoint:
    """One (fabric, offered load) measurement."""

    fabric: str
    offered_load_bps: float
    report: TrafficReport

    @property
    def mean_latency_us(self) -> float:
        return self.report.mean_latency_s * 1e6

    @property
    def throughput_tbps(self) -> float:
        return self.report.achieved_throughput_bps / 1e12


def _build_fabric(kind: str, env: Environment, config: PlatformConfig,
                  floorplan):
    if kind == "photonic-resipi":
        fabric = PhotonicInterposerFabric(env, config, floorplan)
        ReSiPIController(env, fabric, config)
        return fabric
    if kind == "photonic-static":
        fabric = PhotonicInterposerFabric(env, config, floorplan)
        StaticController(env, fabric, config)
        return fabric
    if kind == "awgr":
        return AWGRInterposerFabric(env, config, floorplan)
    if kind == "electrical":
        return ElectricalMeshFabric(env, config, floorplan)
    raise KeyError(f"unknown fabric kind {kind!r}")


def characterize(
    fabric_kind: str,
    loads_bps: tuple[float, ...],
    pattern_name: str = "hotspot",
    config: PlatformConfig | None = None,
    message_bits: float = 1e6,
    duration_s: float = 50e-6,
) -> list[LoadPoint]:
    """Latency-vs-load curve for one fabric kind."""
    config = config or DEFAULT_PLATFORM
    floorplan = build_floorplan(config)
    compute_ids = tuple(
        site.chiplet_id for site in floorplan.compute_sites
    )
    points = []
    for load in loads_bps:
        env = Environment()
        fabric = _build_fabric(fabric_kind, env, config, floorplan)
        pattern = TrafficPattern(
            name=pattern_name,
            offered_load_bps=load,
            message_bits=message_bits,
            duration_s=duration_s,
        )
        generator = TrafficGenerator(env, fabric, compute_ids, pattern)
        report = generator.run()
        points.append(
            LoadPoint(fabric=fabric_kind, offered_load_bps=load,
                      report=report)
        )
    return points


def characterize_all(
    loads_bps: tuple[float, ...] = (0.2e12, 0.5e12, 1e12, 2e12, 4e12),
    pattern_name: str = "hotspot",
    config: PlatformConfig | None = None,
) -> dict[str, list[LoadPoint]]:
    """Curves for every fabric kind."""
    return {
        kind: characterize(kind, loads_bps, pattern_name, config)
        for kind in FABRIC_KINDS
    }


def render_characterization(
    curves: dict[str, list[LoadPoint]]
) -> str:
    """Text table: one block per fabric."""
    lines = ["Network characterisation (hotspot reads, 1 Mb messages)"]
    for kind, points in curves.items():
        lines.append("")
        lines.append(f"{kind}")
        lines.append(
            f"{'offered (Tb/s)':>15}{'delivered (Tb/s)':>18}"
            f"{'mean latency (us)':>19}{'saturated':>11}"
        )
        for point in points:
            lines.append(
                f"{point.offered_load_bps / 1e12:>15.2f}"
                f"{point.throughput_tbps:>18.3f}"
                f"{point.mean_latency_us:>19.2f}"
                f"{'yes' if point.report.saturated else 'no':>11}"
            )
    return "\n".join(lines)
