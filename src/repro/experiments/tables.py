"""Table 1 and Table 2 regeneration (configuration and model census)."""

from __future__ import annotations

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..dnn import zoo
from ..units import GIGA


def render_table1(config: PlatformConfig | None = None) -> str:
    """Render the modeling-parameter table from the live configuration."""
    config = config or DEFAULT_PLATFORM
    lines = [
        "Table 1: modeling parameters",
        f"{'parameter':<46}{'value':>12}",
        "-" * 58,
        f"{'Data rate of optical link (per wavelength)':<46}"
        f"{config.wavelength_data_rate_bps / GIGA:>9.0f} Gb/s",
        f"{'Gateway frequency':<46}"
        f"{config.gateway_frequency_hz / GIGA:>10.0f} GHz",
        f"{'Electrical network-on-chip link width':<46}"
        f"{config.electrical_link_width_bits:>9d} bits",
        f"{'Electrical network-on-chip frequency':<46}"
        f"{config.electrical_noc_frequency_hz / GIGA:>10.0f} GHz",
        f"{'Number of wavelengths':<46}{config.n_wavelengths:>12d}",
        f"{'Number of memory-chiplets':<46}{config.n_memory_chiplets:>12d}",
        f"{'Number of compute-chiplets':<46}"
        f"{config.n_compute_chiplets:>12d}",
    ]
    for group in config.mac_groups:
        lines.append(f"{group.kind} MAC")
        lines.append(
            f"{'  Number of chiplets':<46}{group.n_chiplets:>12d}"
        )
        lines.append(
            f"{'  Number of MACs per chiplet':<46}"
            f"{group.macs_per_chiplet:>12d}"
        )
        lines.append(
            f"{'  Number of MACs per gateway':<46}"
            f"{group.macs_per_gateway:>12d}"
        )
    return "\n".join(lines)


def render_table2() -> str:
    """Render the DNN census with live counts vs the paper's values."""
    lines = [
        "Table 2: considered DNN models",
        f"{'model':<14}{'CONV':>6}{'FC':>4}{'params':>14}"
        f"{'paper params':>14}{'match':>7}",
        "-" * 60,
    ]
    for name in zoo.MODEL_BUILDERS:
        model = zoo.build(name)
        conv, fc = zoo.TABLE2_LAYERS[name]
        target = zoo.TABLE2_PARAMS[name]
        match = (
            model.total_params == target
            and model.conv_layer_count == conv
            and model.fc_layer_count == fc
        )
        lines.append(
            f"{name:<14}{model.conv_layer_count:>6}{model.fc_layer_count:>4}"
            f"{model.total_params:>14,}{target:>14,}"
            f"{'yes' if match else 'NO':>7}"
        )
    return "\n".join(lines)
