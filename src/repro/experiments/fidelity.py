"""Hybrid-fidelity serving engine: the calibrated fluid fast path.

Million-request serving sweeps spend almost all of their wall-clock in
the discrete-event kernel, replaying steady-state windows whose
behaviour a queueing model predicts to within a few percent.  This
module trades that time for a bounded, *measured* fidelity loss:

1. **Calibration** — each fluid cell first runs a short DES window of
   the *same* point (same seed, same arrival stream prefix, faults
   stripped) to measure the empirical service-time distribution, batch
   size and dispatch variability.  The checkpoint is memoised per
   calibration identity (platform × workload × policy × rate), so a
   sweep simulates the warm-up phase once and **forks** every scenario
   variant from the warm state.
2. **Fluid fast path** — the full window is then predicted by the
   piecewise M/G/k fluid model in :mod:`repro.core.analytic`: the exact
   seeded arrival cohort (vectorized, identical to what DES would
   inject), service times drawn from the calibrated quantiles through a
   low-discrepancy stream, and queueing delays from Allen–Cunneen
   stationary waits plus transient backlog drain across capacity
   windows (MAC-degrade hazards, node failures/repairs).
   Autoregressive cohorts decompose further: prefill rides the same
   M/G/k machinery on calibrated prefill quantiles, and decode is a
   vectorized token-service loop over the capacity windows — per-token
   services resampled from width-conditioned calibration quantiles
   (the observed decode-pool widths) through independent Weyl streams.
3. **Validation** — the fluid model re-predicts the calibration window
   itself; the relative error on p50/p99 latency and goodput against
   the DES measurement is recorded in the result's ``fidelity`` block.
   Under ``mode="auto"`` a cell whose error exceeds the declared budget
   automatically falls back to full DES — fidelity loss is bounded and
   reported, never assumed.

The entry point is :func:`simulate_fidelity_cell`, dispatched to by
:func:`~repro.experiments.serving_study.simulate_any_serving_cell`
whenever a cell carries an armed :class:`FidelityPolicy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from itertools import islice

import numpy as np

from ..cluster.hazards import (
    NodeHazardRecord,
    event_nodes,
    node_hazard_timeline,
)
from ..cluster.study import ClusterCell, simulate_cluster_cell
from ..core.analytic import (
    FluidWindow,
    analytic_estimate,
    decode_token_latencies,
    fluid_queue_delays,
)
from ..dnn.workload import extract_workload
from ..errors import ConfigurationError
from ..serving.metrics import (
    ClusterResult,
    FidelityReport,
    IncidentRecord,
    LatencyProfile,
    ModelServingStats,
    NodeStats,
    ServingResult,
    WindowStats,
    mean_time_to_repair,
)
from ..sim.core import Environment
from ..studies.registry import ARRIVALS, MODELS
from .runner import build_platform, config_digest
from .serving_study import (
    ScenarioCell,
    ServingCell,
    _compute_degraded_s,
    _sequence_stream,
    compute_hazard_records,
    platform_timelines,
    simulate_scenario_cell,
    simulate_serving_cell,
)

__all__ = [
    "FidelityPolicy",
    "simulate_fidelity_cell",
    "warm_store_size",
    "clear_warm_store",
]


@dataclass(frozen=True)
class FidelityPolicy:
    """Armed per-cell fidelity policy (compiled from the study spec).

    Only the non-degenerate modes reach cells: ``"fluid"`` always takes
    the fast path (errors recorded), ``"auto"`` falls back to full DES
    when the validation error exceeds ``error_budget``.  Plain
    picklable data — it rides in cell cache keys via ``asdict``.
    """

    mode: str = "fluid"
    error_budget: float = 0.15
    calibration_s: float | None = None


# Low-discrepancy multipliers (Weyl sequences): deterministic,
# equidistributed quantile streams for service draws and stationary
# waits.  Irrational and independent, so the streams never lock.
_PHI = (math.sqrt(5.0) - 1.0) / 2.0
_SQRT2M1 = math.sqrt(2.0) - 1.0
_SQRT3M1 = math.sqrt(3.0) - 1.0
_SQRT7M2 = math.sqrt(7.0) - 2.0
_SQRT11M3 = math.sqrt(11.0) - 3.0


def _weyl(n: int, alpha: float) -> np.ndarray:
    """First ``n`` points of the Weyl sequence ``frac(i * alpha)``."""
    return np.modf(np.arange(1, n + 1, dtype=float) * alpha)[0]


def _nearest_rank(ordered: np.ndarray, q: float) -> float:
    """Nearest-rank percentile of a sorted array — exact mirror of
    :func:`repro.serving.metrics.percentile` (which is list-only)."""
    n = len(ordered)
    if n == 0:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * n))
    return float(ordered[rank - 1])


def _profile(samples: np.ndarray) -> LatencyProfile:
    """A :class:`LatencyProfile` over a numpy sample vector, matching
    ``LatencyProfile.from_samples`` percentile-for-percentile."""
    if samples.size == 0:
        return LatencyProfile(count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0,
                              p99_s=0.0, max_s=0.0)
    ordered = np.sort(samples)
    return LatencyProfile(
        count=int(samples.size),
        mean_s=float(samples.mean()),
        p50_s=_nearest_rank(ordered, 50.0),
        p95_s=_nearest_rank(ordered, 95.0),
        p99_s=_nearest_rank(ordered, 99.0),
        max_s=float(ordered[-1]),
    )


def _rel_err(predicted: float, measured: float) -> float:
    """|pred - meas| / meas, saturating when the reference is zero."""
    if measured <= 0.0:
        return 0.0 if abs(predicted) <= 1e-30 else 1.0
    return abs(predicted - measured) / measured


# ---------------------------------------------------------------------------
# Calibration: short DES windows, memoised as warm-state checkpoints.
# ---------------------------------------------------------------------------


@dataclass
class _CalibrationState:
    """One warm-state checkpoint: the measured truth the fluid model is
    built from (and validated against)."""

    result: object  # ServingResult | ClusterResult of the short window
    calibration_s: float
    served: int
    service_sorted: np.ndarray
    model_service: dict
    mean_batch: float
    service_scv: float
    prefill_sorted: np.ndarray | None = None
    """Sorted prefill service times (``first_token_s - dispatch_s``) of
    the calibration's sequence requests; ``None`` for single-step."""
    gap_sorted: np.ndarray | None = None
    """Sorted inter-token decode services across every sequence."""
    width_per_token: np.ndarray | None = None
    """Observed decode-pool width of every calibrated token (tokens
    finishing at one pool-step instant share that step's width)."""
    width_gaps: dict | None = None
    """Per-width sorted gap samples — width-dependent token service."""


_WARM_STORE: dict[str, _CalibrationState] = {}
"""Per-process warm-state store, keyed by calibration-cell cache key.
Worker processes each hold their own copy; within one worker a sweep
forks every scenario variant of a (platform, workload, policy, rate)
point from a single calibration run."""


def warm_store_size() -> int:
    """Number of memoised calibration checkpoints (this process)."""
    return len(_WARM_STORE)


def clear_warm_store() -> None:
    """Drop every memoised checkpoint (tests and benchmarks)."""
    _WARM_STORE.clear()


def _calibration_window(cell, policy: FidelityPolicy) -> float:
    """Resolve the calibration window length for one cell."""
    if policy.calibration_s is not None:
        return min(cell.duration_s, policy.calibration_s)
    thirty_gaps = 30.0 / cell.rate_rps if cell.rate_rps > 0 else cell.duration_s
    return min(cell.duration_s, max(cell.duration_s / 10.0, thirty_gaps))


def _calibration_cell(cell, calibration_s: float):
    """The short fault-free DES twin of ``cell``.

    Faults are stripped so the checkpoint measures *nominal* service —
    that is what makes it shareable across every hazard-scenario
    variant of the same serving point (the warm-state fork).  The
    study-spec ``digest`` is blanked for the same reason: it covers the
    fault timeline (and the fidelity section itself), so keeping it
    would give every sweep variant a private warm-store key.  The
    remaining behavioral fields — platform, config, mix, policy,
    arrivals, seed — are exactly the (platform, workload) identity the
    checkpoint measures.
    """
    if isinstance(cell, ClusterCell):
        return replace(cell, duration_s=calibration_s, fidelity=None,
                       platform_faults=None, node_faults=None,
                       digest="")
    if isinstance(cell, ScenarioCell):
        return replace(cell, duration_s=calibration_s, fidelity=None,
                       faults=None, digest="")
    return replace(cell, duration_s=calibration_s, fidelity=None)


def _run_des(cell, record_sink: list | None = None):
    """Full-fidelity worker dispatch for a (fidelity-stripped) cell."""
    if isinstance(cell, ClusterCell):
        return simulate_cluster_cell(cell, record_sink=record_sink)
    if isinstance(cell, ScenarioCell):
        return simulate_scenario_cell(cell, record_sink=record_sink)
    return simulate_serving_cell(cell, record_sink=record_sink)


def _calibrate(cell, policy: FidelityPolicy
               ) -> tuple[_CalibrationState, bool, float]:
    """(checkpoint, warm_forked, calibration_s) for one fluid cell."""
    calibration_s = _calibration_window(cell, policy)
    calib_cell = _calibration_cell(cell, calibration_s)
    key = calib_cell.key()
    state = _WARM_STORE.get(key)
    if state is not None:
        return state, True, calibration_s

    sink: list = []
    result = _run_des(calib_cell, record_sink=sink)
    served = [record for record in sink if not record.dropped]
    service = np.sort(np.array(
        [record.service_s for record in served], dtype=float
    ))
    model_service: dict = {}
    for record in served:
        model_service.setdefault(record.model, []).append(record.service_s)
    model_service = {
        name: np.sort(np.array(samples, dtype=float))
        for name, samples in model_service.items()
    }
    mean_batch = (
        sum(record.batch_size for record in served) / len(served)
        if served else 1.0
    )
    if service.size >= 2 and service.mean() > 0:
        service_scv = float(service.var() / service.mean() ** 2)
    else:
        service_scv = 1.0
    prefill_sorted, gap_sorted, width_per_token, width_gaps = (
        _sequence_calibration(served)
    )
    state = _CalibrationState(
        result=result,
        calibration_s=calibration_s,
        served=len(served),
        service_sorted=service,
        model_service=model_service,
        mean_batch=max(1.0, float(mean_batch)),
        service_scv=service_scv,
        prefill_sorted=prefill_sorted,
        gap_sorted=gap_sorted,
        width_per_token=width_per_token,
        width_gaps=width_gaps,
    )
    _WARM_STORE[key] = state
    return state, False, calibration_s


def _sequence_calibration(served):
    """Per-sequence calibration: prefill services, per-token decode
    services, and the observed decode-pool width behind every token.

    Widths are recovered from the records alone: a continuous-batching
    decode step fires every member's token at the same instant, so
    grouping token completion times (reconstructed from
    ``first_token_s`` + gap prefix sums, rounded to picoseconds to
    absorb float re-accumulation) by timestamp recovers each step's
    width — and each gap is then a width-conditioned service sample.
    """
    seq_records = [
        r for r in served if r.is_sequence and r.first_token_s is not None
    ]
    if not seq_records:
        return None, None, None, None
    prefill_sorted = np.sort(np.array(
        [r.first_token_s - r.dispatch_s for r in seq_records], dtype=float
    ))
    step_width: dict[int, int] = {}
    token_keys: list[list[int]] = []
    for r in seq_records:
        t = r.first_token_s
        keys = []
        for gap in r.token_gaps:
            t += gap
            key = int(round(t * 1e12))
            keys.append(key)
            step_width[key] = step_width.get(key, 0) + 1
        token_keys.append(keys)
    gap_samples: list[float] = []
    widths: list[int] = []
    buckets: dict[int, list[float]] = {}
    for r, keys in zip(seq_records, token_keys):
        for gap, key in zip(r.token_gaps, keys):
            width = step_width[key]
            gap_samples.append(gap)
            widths.append(width)
            buckets.setdefault(width, []).append(gap)
    gap_sorted = np.sort(np.array(gap_samples, dtype=float))
    width_per_token = np.sort(np.array(widths, dtype=np.intp))
    width_gaps = {
        width: np.sort(np.array(samples, dtype=float))
        for width, samples in buckets.items()
    }
    return prefill_sorted, gap_sorted, width_per_token, width_gaps


# ---------------------------------------------------------------------------
# Fluid construction: cell knobs -> arrival cohort + capacity windows.
# ---------------------------------------------------------------------------


def _arrival_process(cell):
    """Instantiate the cell's arrival process (registry-validated)."""
    return ARRIVALS.get(cell.arrival_kind)(
        cell.rate_rps, cell.seed,
        burstiness=getattr(cell, "burstiness", 4.0),
        dwell_s=getattr(cell, "dwell_s", 20e-6),
        think_time_s=getattr(cell, "think_time_s", 10e-6),
    )


def _arrival_scv(cell, times: np.ndarray) -> float:
    """Squared coefficient of variation of the inter-arrival gaps."""
    if cell.arrival_kind == "poisson" or times.size < 3:
        return 1.0
    gaps = np.diff(times)
    mean = gaps.mean()
    if mean <= 0:
        return 1.0
    return float(gaps.var() / mean ** 2)


def _cell_models(cell) -> tuple[tuple[str, float, float | None, int], ...]:
    models = getattr(cell, "models", None)
    if models is None:
        return ((cell.model, 1.0, None, 0),)
    return models


def _model_assignment(cell, n: int) -> np.ndarray:
    """Per-arrival tenant index — bit-identical to ``_mix_stream``.

    The event-driven mix sampler draws one ``rng.random()`` per
    arrival from ``default_rng((seed, 211))``; a batched ``random(n)``
    from the same generator yields the identical double stream, so the
    fluid cohort targets exactly the models DES would have.
    """
    models = _cell_models(cell)
    if len(models) == 1:
        return np.zeros(n, dtype=np.intp)
    fractions = np.cumsum([fraction for _, fraction, _, _ in models])
    draws = np.random.default_rng((cell.seed, 211)).random(n)
    indices = np.searchsorted(fractions, draws, side="right")
    return np.minimum(indices, len(models) - 1)


_INFLATION_MEMO: dict[tuple, float] = {}


def _service_inflation(cell, mac_fraction: float) -> float:
    """Service-time stretch factor under a MAC-degrade hazard.

    The ratio of analytic streaming bounds (degraded / nominal) for the
    cell's primary model: compute-bound layers stretch by
    ``1/mac_fraction``, bandwidth-bound layers not at all — the same
    physics :class:`~repro.core.engine.ComputeOccupancy` applies to
    in-flight requests, collapsed to one scalar per window.
    """
    if mac_fraction >= 1.0:
        return 1.0
    primary = _cell_models(cell)[0][0]
    memo_key = (cell.platform, cell.controller, config_digest(cell.config),
                primary, round(mac_fraction, 12))
    cached = _INFLATION_MEMO.get(memo_key)
    if cached is not None:
        return cached
    platform = build_platform(cell.platform, cell.config, cell.controller)
    sim = platform.build_simulation(Environment())
    mapping = sim.map_workload(extract_workload(MODELS.get(primary)()))
    nominal = analytic_estimate(mapping, cell.config).lower_bound_s
    degraded = analytic_estimate(
        mapping, cell.config, mac_fraction=mac_fraction
    ).lower_bound_s
    ratio = degraded / nominal if nominal > 0 else 1.0 / mac_fraction
    _INFLATION_MEMO[memo_key] = ratio
    return ratio


def _mac_segments(events, duration_s: float
                  ) -> list[tuple[float, float, float]]:
    """(start, end, mac_fraction) spans covering [0, duration)."""
    cuts = {0.0, duration_s}
    for event in events:
        if event.at_s < duration_s:
            cuts.add(event.at_s)
            if event.duration_s is not None:
                end = event.at_s + event.duration_s
                if end < duration_s:
                    cuts.add(end)
    ordered = sorted(cuts)
    segments = []
    for start, end in zip(ordered, ordered[1:]):
        midpoint = (start + end) / 2.0
        fraction = 1.0
        for event in events:
            event_end = (
                event.at_s + event.duration_s
                if event.duration_s is not None else float("inf")
            )
            if event.at_s <= midpoint < event_end:
                fraction = min(fraction, event.mac_fraction)
        segments.append((start, end, fraction))
    return segments


_NODE_STATE = {
    "node-fail": "failed",
    "rack-fail": "failed",
    "node-drain": "draining",
    "node-repair": "up",
    "rack-repair": "up",
}


def _replica_walk(cell: ClusterCell):
    """Replay the node-hazard timeline analytically.

    Returns ``(segments, final_states, uptime, incidents, records)``:
    (start, end, active) capacity spans, each node's final router state,
    per-node up-time integrals over the window, synthesized
    :class:`IncidentRecord` outages (failures only, omniscient
    detection — matching the router's accounting) and the applied
    :class:`NodeHazardRecord` stream.
    """
    events = node_hazard_timeline(cell.node_faults)
    duration = cell.duration_s
    states = {index: "up" for index in range(cell.replicas)}
    up_since = {index: 0.0 for index in range(cell.replicas)}
    uptime = {index: 0.0 for index in range(cell.replicas)}
    open_incident: dict[int, IncidentRecord] = {}
    incidents: list[IncidentRecord] = []
    records: list[NodeHazardRecord] = []
    segments: list[tuple[float, float, int]] = []
    cursor = 0.0
    active = cell.replicas
    for event in events:
        at = min(event.at_s, duration)
        if at > cursor:
            segments.append((cursor, at, active))
            cursor = at
        if event.at_s > duration:
            break
        for node in event_nodes(event):
            if node >= cell.replicas:
                raise ConfigurationError(
                    f"node hazard addresses node {node} but the fleet "
                    f"has {cell.replicas} replicas"
                )
            previous = states[node]
            state = _NODE_STATE[event.kind]
            if previous == "up" and state != "up":
                uptime[node] += event.at_s - up_since[node]
            if previous != "up" and state == "up":
                up_since[node] = event.at_s
            if state == "failed" and node not in open_incident:
                open_incident[node] = IncidentRecord(
                    node=node, start_s=event.at_s, detected_s=event.at_s
                )
            if state == "up" and node in open_incident:
                incidents.append(replace(
                    open_incident.pop(node), end_s=event.at_s
                ))
            states[node] = state
            records.append(NodeHazardRecord(
                kind=event.kind, node=node, at_s=event.at_s
            ))
        active = sum(1 for state in states.values() if state == "up")
    if cursor < duration:
        segments.append((cursor, duration, active))
    for node, state in states.items():
        if state == "up":
            uptime[node] += duration - up_since[node]
    incidents.extend(open_incident.values())
    incidents.sort(key=lambda incident: (incident.start_s, incident.node))
    return segments, states, uptime, tuple(incidents), tuple(records)


def _overlay_segments(mac_segments, replica_segments):
    """Merge MAC-fraction and active-replica spans on shared cuts."""
    cuts = sorted(
        {start for start, _, _ in mac_segments}
        | {end for _, end, _ in mac_segments}
        | {start for start, _, _ in replica_segments}
        | {end for _, end, _ in replica_segments}
    )
    merged = []
    for start, end in zip(cuts, cuts[1:]):
        midpoint = (start + end) / 2.0
        fraction = next(
            (f for s, e, f in mac_segments if s <= midpoint < e), 1.0
        )
        active = next(
            (a for s, e, a in replica_segments if s <= midpoint < e), None
        )
        merged.append((start, end, fraction, active))
    return merged


def _build_windows(cell, state: _CalibrationState, policy_slots: int,
                   arrival_scv: float):
    """The piecewise capacity model for one cell's full window.

    Returns ``(windows, cluster_walk)`` where ``cluster_walk`` is the
    :func:`_replica_walk` tuple for fleets (``None`` otherwise).
    """
    service_mean = (
        float(state.service_sorted.mean())
        if state.service_sorted.size else 0.0
    )
    if isinstance(cell, ClusterCell):
        _, compute_events = platform_timelines(cell.platform_faults)
        walk = _replica_walk(cell)
        mac = _mac_segments(compute_events, cell.duration_s)
        windows = []
        for start, end, fraction, active in _overlay_segments(
            mac, walk[0]
        ):
            inflation = _service_inflation(cell, fraction)
            if active:
                servers = active * policy_slots
                mean_s = service_mean * inflation
            else:
                # Zero replicas up: no drain at all.  A server count of
                # one with an (effectively) infinite service time gives
                # the fluid model zero capacity without dividing by it.
                servers = 1
                mean_s = max(service_mean, 1e-9) * 1e12
            windows.append(FluidWindow(
                start_s=start, end_s=end, servers=servers,
                service_mean_s=mean_s, mean_batch=state.mean_batch,
                service_scv=state.service_scv, arrival_scv=arrival_scv,
            ))
        return windows, walk
    faults = getattr(cell, "faults", None)
    _, compute_events = platform_timelines(faults)
    windows = [
        FluidWindow(
            start_s=start, end_s=end, servers=policy_slots,
            service_mean_s=service_mean * _service_inflation(cell, fraction),
            mean_batch=state.mean_batch,
            service_scv=state.service_scv, arrival_scv=arrival_scv,
        )
        for start, end, fraction in _mac_segments(
            compute_events, cell.duration_s
        )
    ]
    return windows, None


def _sample_services(cell, state: _CalibrationState,
                     model_indices: np.ndarray) -> np.ndarray:
    """Per-arrival service times from the calibrated quantiles.

    A Weyl low-discrepancy stream indexes each tenant's sorted service
    samples, reproducing the calibration distribution (including its
    batching plateau) without RNG noise between fluid runs.
    """
    n = len(model_indices)
    uniforms = _weyl(n, _PHI)
    services = np.empty(n, dtype=float)
    models = _cell_models(cell)
    overall = state.service_sorted
    for index, (name, _, _, _) in enumerate(models):
        mask = model_indices == index
        if not mask.any():
            continue
        samples = state.model_service.get(name)
        if samples is None or samples.size == 0:
            samples = overall
        ranks = np.minimum(
            (uniforms[mask] * samples.size).astype(np.intp),
            samples.size - 1,
        )
        services[mask] = samples[ranks]
    return services


@dataclass
class _FluidTrace:
    """The vectorized per-request outcome of one fluid evaluation."""

    arrival_s: np.ndarray
    queue_delay_s: np.ndarray
    latency_s: np.ndarray
    finish_s: np.ndarray
    model_indices: np.ndarray
    ttft_s: np.ndarray | None = None
    """Per-sequence time to first token (sequence cohorts only)."""
    token_gap_s: np.ndarray | None = None
    """Flat per-token decode latencies across every sequence."""
    output_tokens: np.ndarray | None = None
    """Tokens generated per arrival (zero for single-step tenants)."""


def _sequence_lengths(cell, n: int,
                      model_indices: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """(prompt, output) token counts per arrival — DES-identical.

    ``fixed`` lengths are pure table lookups; ``geometric`` lengths
    replay :func:`_sequence_stream` itself (same ``(seed, 311)`` RNG,
    same per-arrival draw order), so the fluid cohort decodes exactly
    the token counts the event-driven scheduler would have.
    """
    sequences = cell.sequences
    if cell.length_distribution == "fixed":
        prompt_means = np.array(
            [prompt for prompt, _ in sequences], dtype=np.intp
        )
        output_means = np.array(
            [output for _, output in sequences], dtype=np.intp
        )
        return prompt_means[model_indices], output_means[model_indices]
    prompts = np.empty(n, dtype=np.intp)
    outputs = np.empty(n, dtype=np.intp)
    stream = _sequence_stream(
        _cell_models(cell), sequences, cell.length_distribution, cell.seed
    )
    for index, (_, prompt, output) in enumerate(islice(stream, n)):
        prompts[index] = prompt
        outputs[index] = output
    return prompts, outputs


def _sample_decode_gaps(state: _CalibrationState, total: int) -> np.ndarray:
    """Nominal per-token decode services for ``total`` tokens.

    Two Weyl streams drive the draw: one resamples the observed
    decode-pool width distribution, the other indexes that width's
    calibrated gap quantiles — wider pools amortize a step across more
    tokens, and the calibration measured exactly how.
    """
    if total == 0 or state.gap_sorted is None or state.gap_sorted.size == 0:
        return np.zeros(total, dtype=float)
    widths = state.width_per_token
    gap_uniforms = _weyl(total, _SQRT11M3)
    if widths is None or widths.size == 0 or not state.width_gaps:
        ranks = np.minimum(
            (gap_uniforms * state.gap_sorted.size).astype(np.intp),
            state.gap_sorted.size - 1,
        )
        return state.gap_sorted[ranks]
    width_uniforms = _weyl(total, _SQRT7M2)
    picks = widths[np.minimum(
        (width_uniforms * widths.size).astype(np.intp), widths.size - 1
    )]
    gaps = np.empty(total, dtype=float)
    for width in np.unique(picks):
        bucket = state.width_gaps.get(int(width))
        if bucket is None or bucket.size == 0:
            bucket = state.gap_sorted
        mask = picks == width
        ranks = np.minimum(
            (gap_uniforms[mask] * bucket.size).astype(np.intp),
            bucket.size - 1,
        )
        gaps[mask] = bucket[ranks]
    return gaps


def _decode_cohort(cell, state: _CalibrationState, times: np.ndarray,
                   waits: np.ndarray, latency: np.ndarray,
                   model_indices: np.ndarray, windows, stretch):
    """Sequence-aware latency decomposition of one fluid cohort.

    Prefill rides the calibrated quantiles (window-stretched like any
    service); decode is the vectorized token-service loop of
    :func:`~repro.core.analytic.decode_token_latencies`.  Returns
    ``(ttft, token_gaps, outputs, latency)`` with single-step tenants'
    latencies untouched.
    """
    n = len(times)
    _, outputs = _sequence_lengths(cell, n, model_indices)
    seq_mask = outputs > 0
    prefill_quantiles = state.prefill_sorted
    prefill_uniforms = _weyl(n, _SQRT3M1)
    ranks = np.minimum(
        (prefill_uniforms * prefill_quantiles.size).astype(np.intp),
        prefill_quantiles.size - 1,
    )
    prefill = prefill_quantiles[ranks]
    if stretch is not None:
        starts = np.array([window.start_s for window in windows])
        window_of = np.clip(
            np.searchsorted(starts, times, side="right") - 1,
            0, len(windows) - 1,
        )
        prefill = prefill * stretch[window_of]
    ttft = waits + prefill
    token_counts = np.where(seq_mask, np.maximum(outputs - 1, 0), 0)
    gaps = _sample_decode_gaps(state, int(token_counts.sum()))
    decode_s, stretched_gaps = decode_token_latencies(
        times + ttft, gaps, token_counts, windows, stretch
    )
    latency = np.where(seq_mask, ttft + decode_s, latency)
    return ttft[seq_mask], stretched_gaps, outputs, latency


def _evaluate_fluid(cell, state: _CalibrationState, duration_s: float,
                    windows) -> _FluidTrace:
    """Run the fluid model over the cell's exact arrival cohort."""
    times = _arrival_process(cell).arrival_times(duration_s)
    n = len(times)
    if n == 0:
        empty = np.empty(0, dtype=float)
        return _FluidTrace(empty, empty, empty, empty,
                           np.empty(0, dtype=np.intp))
    model_indices = _model_assignment(cell, n)
    services = _sample_services(cell, state, model_indices)
    stretch = None
    if len(windows) > 1:
        starts = np.array([window.start_s for window in windows])
        window_of = np.clip(
            np.searchsorted(starts, times, side="right") - 1,
            0, len(windows) - 1,
        )
        nominal = (
            float(state.service_sorted.mean())
            if state.service_sorted.size else 0.0
        )
        if nominal > 0:
            stretch = np.array([
                window.service_mean_s / nominal for window in windows
            ])
            services = services * stretch[window_of]
    waits = fluid_queue_delays(times, windows, _weyl(n, _SQRT2M1))
    latency = waits + services
    ttft = token_gaps = outputs = None
    if (getattr(cell, "sequences", ())
            and state.prefill_sorted is not None
            and state.prefill_sorted.size):
        ttft, token_gaps, outputs, latency = _decode_cohort(
            cell, state, times, waits, latency, model_indices,
            windows, stretch,
        )
    return _FluidTrace(
        arrival_s=times, queue_delay_s=waits, latency_s=latency,
        finish_s=times + latency, model_indices=model_indices,
        ttft_s=ttft, token_gap_s=token_gaps, output_tokens=outputs,
    )


# ---------------------------------------------------------------------------
# Validation + result assembly.
# ---------------------------------------------------------------------------


def _policy_slots(cell) -> int:
    return cell.policy.max_inflight


def _validate(cell, state: _CalibrationState, warm: bool,
              policy: FidelityPolicy) -> FidelityReport:
    """Fluid re-prediction of the calibration window vs its DES truth."""
    if state.served == 0:
        return FidelityReport(
            mode_requested=policy.mode, mode_used="des-fallback",
            error_budget=policy.error_budget,
            calibration_s=state.calibration_s, calibration_requests=0,
            p50_rel_err=1.0, p99_rel_err=1.0, goodput_rel_err=1.0,
            warm_forked=warm,
        )
    calib_cell = _calibration_cell(cell, state.calibration_s)
    times = _arrival_process(calib_cell).arrival_times(state.calibration_s)
    arrival_scv = _arrival_scv(calib_cell, times)
    servers = _policy_slots(cell) * (
        cell.replicas if isinstance(cell, ClusterCell) else 1
    )
    window = FluidWindow(
        start_s=0.0, end_s=state.calibration_s, servers=servers,
        service_mean_s=float(state.service_sorted.mean()),
        mean_batch=state.mean_batch, service_scv=state.service_scv,
        arrival_scv=arrival_scv,
    )
    trace = _evaluate_fluid(calib_cell, state, state.calibration_s,
                            [window])
    measured = state.result
    if trace.latency_s.size:
        elapsed = max(state.calibration_s, float(trace.finish_s.max()))
        ordered = np.sort(trace.latency_s)
        predicted_p50 = _nearest_rank(ordered, 50.0)
        predicted_p99 = _nearest_rank(ordered, 99.0)
        predicted_goodput = trace.latency_s.size / elapsed
    else:
        predicted_p50 = predicted_p99 = predicted_goodput = 0.0
    ttft_err = token_err = None
    if trace.ttft_s is not None and trace.ttft_s.size:
        measured_ttft = getattr(measured, "ttft", None)
        if measured_ttft is not None:
            ttft_err = _rel_err(
                _nearest_rank(np.sort(trace.ttft_s), 99.0),
                measured_ttft.p99_s,
            )
        measured_token = getattr(measured, "token_latency", None)
        if (measured_token is not None and trace.token_gap_s is not None
                and trace.token_gap_s.size):
            token_err = _rel_err(
                _nearest_rank(np.sort(trace.token_gap_s), 99.0),
                measured_token.p99_s,
            )
    return FidelityReport(
        mode_requested=policy.mode, mode_used="fluid",
        error_budget=policy.error_budget,
        calibration_s=state.calibration_s,
        calibration_requests=state.served,
        p50_rel_err=_rel_err(predicted_p50, measured.latency.p50_s),
        p99_rel_err=_rel_err(predicted_p99, measured.latency.p99_s),
        goodput_rel_err=_rel_err(predicted_goodput, measured.goodput_rps),
        warm_forked=warm,
        ttft_rel_err=ttft_err,
        token_p99_rel_err=token_err,
    )


def _per_model(cell, trace: _FluidTrace, elapsed: float
               ) -> tuple[ModelServingStats, ...]:
    models = _cell_models(cell)
    stats = []
    for index, (name, _, slo_s, _) in enumerate(models):
        mask = trace.model_indices == index
        latencies = trace.latency_s[mask]
        violations = (
            int((latencies > slo_s).sum()) if slo_s is not None else 0
        )
        stats.append(ModelServingStats(
            model=name, slo_s=slo_s, completed=int(mask.sum()), shed=0,
            slo_violations=violations, latency=_profile(latencies),
            goodput_rps=(
                float(mask.sum()) / elapsed if elapsed > 0 else 0.0
            ),
        ))
    return tuple(stats)


def _window_stats(cell, trace: _FluidTrace, span, elapsed: float
                  ) -> tuple[WindowStats, ...]:
    """before/during/after splits by arrival time, mirroring
    :func:`repro.serving.metrics.windowed_stats` for the fluid trace."""
    if span is None:
        return ()
    fault_start, fault_end = span
    slos = {
        index: slo_s
        for index, (_, _, slo_s, _) in enumerate(_cell_models(cell))
    }
    phases = (
        ("before", 0.0, fault_start),
        ("during", fault_start, fault_end),
        ("after", fault_end, elapsed),
    )
    stats = []
    for label, start, end in phases:
        if end <= start:
            continue
        mask = (trace.arrival_s >= start) & (trace.arrival_s < end)
        latencies = trace.latency_s[mask]
        violations = 0
        for index, slo_s in slos.items():
            if slo_s is None:
                continue
            model_mask = mask & (trace.model_indices == index)
            violations += int((trace.latency_s[model_mask] > slo_s).sum())
        stats.append(WindowStats(
            label=label, start_s=start, end_s=end,
            completed=int(mask.sum()), shed=0,
            slo_violations=violations, latency=_profile(latencies),
            goodput_rps=float(mask.sum()) / (end - start),
        ))
    return tuple(stats)


def _fault_span(compute_events, elapsed: float):
    spans = [
        (
            event.at_s,
            min(
                elapsed,
                event.at_s + event.duration_s
                if event.duration_s is not None else elapsed,
            ),
        )
        for event in compute_events
        if event.at_s < elapsed
    ]
    if not spans:
        return None
    return min(s for s, _ in spans), max(e for _, e in spans)


def _scale(value: float, completed: int, reference: int) -> float:
    """Extrapolate a calibration-window extensive quantity."""
    if reference <= 0:
        return value
    return value * (completed / reference)


def _fluid_serving_result(cell, state: _CalibrationState,
                          report: FidelityReport) -> ServingResult:
    trace_windows = _build_windows(
        cell, state, _policy_slots(cell),
        _arrival_scv(cell, _arrival_process(cell)
                     .arrival_times(cell.duration_s)),
    )[0]
    trace = _evaluate_fluid(cell, state, cell.duration_s, trace_windows)
    completed = int(trace.latency_s.size)
    elapsed = (
        max(cell.duration_s, float(trace.finish_s.max()))
        if completed else cell.duration_s
    )
    calibration: ServingResult = state.result
    _, compute_events = platform_timelines(getattr(cell, "faults", None))
    span = _fault_span(compute_events, elapsed)
    mix_label = getattr(cell, "mix_label", getattr(cell, "model", ""))
    ttft_profile = token_profile = None
    tokens = 0
    tokens_per_s = 0.0
    kv_refusals = 0
    kv_peak_bits = 0.0
    decode_remaps = 0
    if trace.ttft_s is not None:
        ttft_profile = _profile(trace.ttft_s)
        token_profile = _profile(trace.token_gap_s)
        tokens = int(trace.output_tokens.sum())
        tokens_per_s = tokens / elapsed if elapsed > 0 else 0.0
        kv_refusals = int(round(_scale(
            calibration.kv_refusals, completed,
            calibration.requests_completed,
        )))
        # Intensive quantities: the calibration's peak reservation and
        # pool-width census stand for the full window.
        kv_peak_bits = calibration.kv_peak_bits
        decode_remaps = calibration.decode_remaps
    return ServingResult(
        platform=calibration.platform,
        model=mix_label,
        controller=cell.controller,
        policy=cell.policy.label,
        arrival_kind=cell.arrival_kind,
        offered_rps=cell.rate_rps,
        duration_s=cell.duration_s,
        elapsed_s=elapsed,
        requests_injected=completed,
        requests_completed=completed,
        latency=_profile(trace.latency_s),
        queue_delay=_profile(trace.queue_delay_s),
        mean_batch_size=state.mean_batch if completed else 0.0,
        mean_inflight=calibration.mean_inflight,
        mean_compute_utilization=calibration.mean_compute_utilization,
        reconfigurations=int(round(_scale(
            calibration.reconfigurations, completed,
            calibration.requests_completed,
        ))),
        network_energy_j=_scale(
            calibration.network_energy_j, completed,
            calibration.requests_completed,
        ),
        compute_energy_j=_scale(
            calibration.compute_energy_j, completed,
            calibration.requests_completed,
        ),
        channel_stats=calibration.channel_stats,
        requests_shed=0,
        per_model=_per_model(cell, trace, elapsed),
        windows=_window_stats(cell, trace, span, elapsed),
        hazard_events=compute_hazard_records(compute_events, elapsed),
        time_degraded_s=_compute_degraded_s(compute_events, elapsed),
        ttft=ttft_profile,
        token_latency=token_profile,
        tokens_generated=tokens,
        tokens_per_s=tokens_per_s,
        kv_refusals=kv_refusals,
        kv_peak_bits=kv_peak_bits,
        decode_remaps=decode_remaps,
        fidelity=report,
    )


def _fluid_cluster_result(cell: ClusterCell, state: _CalibrationState,
                          report: FidelityReport) -> ClusterResult:
    arrival_scv = _arrival_scv(
        cell, _arrival_process(cell).arrival_times(cell.duration_s)
    )
    windows, walk = _build_windows(
        cell, state, _policy_slots(cell), arrival_scv
    )
    segments, final_states, uptime, incidents, node_records = walk
    trace = _evaluate_fluid(cell, state, cell.duration_s, windows)
    completed = int(trace.latency_s.size)
    elapsed = (
        max(cell.duration_s, float(trace.finish_s.max()))
        if completed else cell.duration_s
    )
    calibration: ClusterResult = state.result

    # Completed requests distribute across replicas in proportion to
    # routable up-time x routing weight — the fluid model does not track
    # per-node queues, so this is the stationary share.
    weights = cell.weights if cell.weights else (1.0,) * cell.replicas
    shares = np.array([
        uptime[index] * weights[index] for index in range(cell.replicas)
    ])
    total_share = shares.sum()
    if total_share <= 0:
        shares = np.ones(cell.replicas)
        total_share = float(cell.replicas)
    node_completed = np.floor(
        shares / total_share * completed
    ).astype(int)
    node_completed[int(np.argmax(shares))] += completed - node_completed.sum()
    overall_profile = _profile(trace.latency_s)
    calib_by_node = {
        stats.node: stats for stats in calibration.per_node
    }
    per_node = []
    for index in range(cell.replicas):
        name = f"node{index}"
        calib_node = calib_by_node.get(name)
        per_node.append(NodeStats(
            node=name,
            state=final_states[index],
            requests_completed=int(node_completed[index]),
            requests_shed=0,
            rerouted_away=0,
            latency=overall_profile,
            goodput_rps=(
                int(node_completed[index]) / elapsed if elapsed > 0
                else 0.0
            ),
            mean_compute_utilization=(
                calib_node.mean_compute_utilization if calib_node
                else 0.0
            ),
        ))

    availability = (
        sum(uptime.values()) / (cell.replicas * cell.duration_s)
        if cell.duration_s > 0 else 1.0
    )
    span = None
    if incidents:
        span = (
            min(incident.start_s for incident in incidents),
            max(
                incident.end_s if incident.end_s is not None else elapsed
                for incident in incidents
            ),
        )
    _, compute_events = platform_timelines(cell.platform_faults)
    if span is None:
        span = _fault_span(compute_events, elapsed)
    return ClusterResult(
        platform=calibration.platform,
        model=cell.mix_label,
        controller=cell.controller,
        router=cell.router,
        policy=cell.policy.label,
        arrival_kind=cell.arrival_kind,
        n_nodes=cell.replicas,
        offered_rps=cell.rate_rps,
        duration_s=cell.duration_s,
        elapsed_s=elapsed,
        requests_injected=completed,
        requests_completed=completed,
        latency=overall_profile,
        queue_delay=_profile(trace.queue_delay_s),
        per_node=tuple(per_node),
        requests_shed=0,
        requests_rerouted=0,
        per_model=_per_model(cell, trace, elapsed),
        node_events=node_records,
        network_energy_j=_scale(
            calibration.network_energy_j, completed,
            calibration.requests_completed,
        ),
        compute_energy_j=_scale(
            calibration.compute_energy_j, completed,
            calibration.requests_completed,
        ),
        windows=_window_stats(cell, trace, span, elapsed),
        availability=availability,
        mttr_s=mean_time_to_repair(incidents),
        incidents=incidents,
        fidelity=report,
    )


def simulate_fidelity_cell(cell):
    """Worker body for any cell carrying an armed fidelity policy.

    Calibrate (or warm-fork), validate, then either evaluate the fluid
    fast path or fall back to full DES — attaching the
    :class:`FidelityReport` either way.
    """
    policy: FidelityPolicy = cell.fidelity
    state, warm, _ = _calibrate(cell, policy)
    report = _validate(cell, state, warm, policy)
    fallback = report.mode_used == "des-fallback" or (
        policy.mode == "auto" and not report.within_budget
    )
    if fallback:
        report = replace(report, mode_used="des-fallback")
        full = _run_des(replace(cell, fidelity=None))
        return replace(full, fidelity=report)
    if isinstance(cell, ClusterCell):
        return _fluid_cluster_result(cell, state, report)
    return _fluid_serving_result(cell, state, report)
