"""Experiment orchestration: run model suites across platforms.

Results are cached per ``(platform, model, config-id)`` within a runner
instance so that Fig. 7 and Table 3 (which share runs) do not simulate
twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.accelerator import (
    CrossLight25DElec,
    CrossLight25DSiPh,
    MonolithicCrossLight,
)
from ..core.metrics import InferenceResult
from ..dnn import zoo
from ..dnn.workload import InferenceWorkload, extract_workload

MODEL_NAMES = tuple(zoo.MODEL_BUILDERS)
"""Table 2 model names in paper order."""

PLATFORM_ORDER = (
    "CrossLight",
    "2.5D-CrossLight-Elec",
    "2.5D-CrossLight-SiPh",
)
"""The three simulated platforms, Table 3 order."""


@dataclass
class ExperimentRunner:
    """Runs and caches inferences across the evaluation matrix."""

    config: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    controller: str = "resipi"
    _workloads: dict[str, InferenceWorkload] = field(default_factory=dict)
    _results: dict[tuple[str, str], InferenceResult] = field(
        default_factory=dict
    )

    def workload(self, model_name: str) -> InferenceWorkload:
        """Extract (and cache) the inference workload of a zoo model."""
        if model_name not in self._workloads:
            self._workloads[model_name] = extract_workload(
                zoo.build(model_name)
            )
        return self._workloads[model_name]

    def _platform(self, platform_name: str):
        if platform_name == "CrossLight":
            return MonolithicCrossLight(self.config)
        if platform_name == "2.5D-CrossLight-Elec":
            return CrossLight25DElec(self.config)
        if platform_name == "2.5D-CrossLight-SiPh":
            return CrossLight25DSiPh(self.config, controller=self.controller)
        raise KeyError(f"unknown platform {platform_name!r}")

    def run(self, platform_name: str, model_name: str) -> InferenceResult:
        """Run one (platform, model) cell, cached."""
        key = (platform_name, model_name)
        if key not in self._results:
            platform = self._platform(platform_name)
            self._results[key] = platform.run_workload(
                self.workload(model_name)
            )
        return self._results[key]

    def run_matrix(
        self,
        platforms: tuple[str, ...] = PLATFORM_ORDER,
        models: tuple[str, ...] = MODEL_NAMES,
    ) -> dict[tuple[str, str], InferenceResult]:
        """Run the full evaluation matrix; returns all cells."""
        for platform_name in platforms:
            for model_name in models:
                self.run(platform_name, model_name)
        return {
            key: result
            for key, result in self._results.items()
            if key[0] in platforms and key[1] in models
        }

    def average(self, platform_name: str, metric: str,
                models: tuple[str, ...] = MODEL_NAMES) -> float:
        """Average a result attribute across models for one platform."""
        values = [
            getattr(self.run(platform_name, model_name), metric)
            for model_name in models
        ]
        return sum(values) / len(values)
