"""Experiment orchestration: run model suites across platforms.

Three layers of reuse keep repeated invocations cheap:

* an **in-memory cache** per runner instance — Fig. 7 and Table 3 share
  runs within one process, as before;
* an optional **persistent on-disk result cache** (``cache_dir``) keyed
  by a content hash of ``(platform, model, controller, PlatformConfig)``
  — repeated benchmark/figure invocations across processes never
  re-simulate identical cells;
* a **process-pool fan-out** (``jobs=N``) for cold cells — every cell is
  an independent simulation in a fresh :class:`Environment`, so parallel
  results are bit-identical to serial ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..core.metrics import InferenceResult
from ..dnn import zoo
from ..dnn.workload import InferenceWorkload, extract_workload
from ..errors import UnknownNameError
from ..studies.registry import MODELS, PLATFORMS

MODEL_NAMES = tuple(zoo.MODEL_BUILDERS)
"""Table 2 model names in paper order."""

PLATFORM_ORDER = (
    "CrossLight",
    "2.5D-CrossLight-Elec",
    "2.5D-CrossLight-SiPh",
)
"""The three simulated platforms, Table 3 order."""

CACHE_SCHEMA_VERSION = 1
"""Bump whenever simulation semantics change so stale cached results
are never served for new code."""


# ---------------------------------------------------------------------------
# Content-hash cache keys.
# ---------------------------------------------------------------------------


def config_digest(config: PlatformConfig) -> str:
    """Stable content hash of a platform configuration.

    Hashes the JSON of every dataclass field (nested MAC groups
    included), so two configs with equal contents share a digest no
    matter how they were constructed.
    """
    payload = json.dumps(asdict(config), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cell_key(platform_name: str, model_name: str, controller: str,
             config: PlatformConfig,
             extra: dict[str, Any] | None = None) -> str:
    """Content hash identifying one simulation cell.

    ``extra`` lets studies that vary more than the platform config
    (e.g. quantisation schemes) extend the key instead of colliding.
    """
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "platform": platform_name,
            "model": model_name,
            "controller": controller,
            "config": asdict(config),
            "extra": extra or {},
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent on-disk store of pickled results.

    One file per content-hash key; writes are atomic (temp file +
    ``os.replace``) so concurrent worker processes can share a cache
    directory safely.  Values are any picklable result record —
    :class:`InferenceResult` for the evaluation matrix,
    :class:`~repro.serving.metrics.ServingResult` for serving studies.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise NotADirectoryError(
                f"cache dir {self.directory} exists and is not a directory"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Any | None:
        """The cached result for ``key``, or None on miss/corruption.

        A file that cannot be unpickled (truncated write, renamed
        classes, garbage bytes) is treated as a miss **and evicted**, so
        one bad entry cannot shadow its key forever.  I/O errors while
        reading (descriptor exhaustion, EIO) are transient, not
        corruption: they miss without deleting.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except (OSError, MemoryError):
            self.misses += 1
            return None
        except (EOFError, ValueError, TypeError, IndexError,
                ImportError, pickle.UnpicklingError, AttributeError):
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            self.evictions += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        """Store a result under ``key`` (atomic, last-writer-wins)."""
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


# ---------------------------------------------------------------------------
# Cell simulation — module-level so ProcessPoolExecutor can pickle it.
# ---------------------------------------------------------------------------


def build_platform(platform_name: str, config: PlatformConfig,
                   controller: str = "resipi", faults=None):
    """Construct a simulated platform by its registry (Table 3) name.

    Resolution goes through the platform registry, so unknown names
    fail with a typed did-you-mean error and externally registered
    platforms work everywhere this is called.  ``faults`` is an
    optional :class:`~repro.interposer.photonic.faults.HazardTimeline`
    the platform will attach in ``build_simulation``; platforms without
    a fault model reject it, and factories registered before the hazard
    engine existed only see it when one is actually passed.
    """
    factory = PLATFORMS.get(platform_name)
    if faults is None:
        return factory(config, controller)
    return factory(config, controller, faults=faults)


def _simulate_cell(platform_name: str, model_name: str, controller: str,
                   config: PlatformConfig) -> InferenceResult:
    """Worker body: one full simulation of one matrix cell."""
    platform = build_platform(platform_name, config, controller)
    workload = extract_workload(MODELS.get(model_name)())
    return platform.run_workload(workload)


Cell = tuple[str, str, str, PlatformConfig]
"""(platform, model, controller, config) — one simulation to run."""


def parallel_map(fn: Callable, argument_tuples: Sequence[tuple],
                 jobs: int) -> list:
    """``[fn(*args) for args in argument_tuples]`` with process fan-out.

    The single pool-dispatch implementation every study shares: results
    come back in input order regardless of completion order, and
    ``jobs=1`` (or a single task) stays in-process.  ``fn`` and all
    arguments must be picklable module-level objects.
    """
    tasks = list(argument_tuples)
    if jobs > 1 and len(tasks) > 1:
        workers = min(jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, *args) for args in tasks]
            return [future.result() for future in futures]
    return [fn(*args) for args in tasks]


def _simulate_many(cells: Sequence[Cell], jobs: int
                   ) -> list[InferenceResult]:
    """Simulate cells; each runs in a fresh environment, so the output
    is bit-identical to a serial loop."""
    return parallel_map(_simulate_cell, cells, jobs)


@dataclass
class CacheStats:
    """Mutable tally of one study run's cache behaviour.

    Pass an instance to :func:`run_cached` (studies thread it through
    from the CLI) and read it back after the run: ``hits`` cells served
    from disk, ``misses`` lookups that found nothing usable,
    ``evictions`` corrupt entries discarded during lookup, and
    ``simulated`` cells actually run (misses, plus every cell when no
    cache directory is configured).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    simulated: int = 0
    cell_times: list = field(default_factory=list)
    """Per-cell wall-time observations: ``(label, seconds, cache_hit)``
    tuples in input order — cache hits record the (tiny) lookup time,
    misses the actual simulate-seconds."""

    def merge(self, cache: "ResultCache", simulated: int) -> None:
        """Fold one cache's counters (and a fan-out tally) in."""
        self.hits += cache.hits
        self.misses += cache.misses
        self.evictions += cache.evictions
        self.simulated += simulated

    def record_cell(self, label: str, seconds: float, hit: bool) -> None:
        """Log one cell's wall time (hit = served from the disk cache)."""
        self.cell_times.append((label, seconds, hit))

    def slowest_cells(self, n: int = 5) -> list:
        """The ``n`` largest wall-time observations, slowest first."""
        return sorted(
            self.cell_times, key=lambda entry: entry[1], reverse=True
        )[:n]

    def render_slowest(self, n: int = 5) -> str:
        """Readable top-``n`` wall-time table (empty without data)."""
        rows = self.slowest_cells(n)
        if not rows:
            return ""
        lines = [f"slowest cells (top {len(rows)}):"]
        for label, seconds, hit in rows:
            tag = "  [cache hit]" if hit else ""
            lines.append(f"  {seconds * 1e3:9.1f} ms  {label}{tag}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line report: ``cache: 12 hits, 3 misses (3 simulated)``."""
        line = (
            f"cache: {self.hits} hit{'s' if self.hits != 1 else ''}, "
            f"{self.misses} miss{'es' if self.misses != 1 else ''} "
            f"({self.simulated} simulated)"
        )
        if self.evictions:
            line += f", {self.evictions} corrupt evicted"
        return line


def cell_label(cell) -> str:
    """Short human-readable identity of one simulation cell.

    Works across every cell flavour (matrix tuples, inference/serving/
    scenario/cluster dataclasses) without those types having to agree
    on a field set — this only feeds observability output.
    """
    if isinstance(cell, tuple):
        return "/".join(str(part) for part in cell[:3])
    parts = []
    for name in ("platform", "mix_label", "model", "controller"):
        value = getattr(cell, name, "")
        if value and value not in parts:
            parts.append(str(value))
            if name in ("mix_label", "model") and len(parts) >= 2:
                break
    controller = getattr(cell, "controller", "")
    if controller and controller not in parts:
        parts.append(controller)
    policy = getattr(getattr(cell, "policy", None), "name", "")
    if policy:
        parts.append(policy)
    rate = getattr(cell, "rate_rps", None)
    if rate:
        parts.append(f"{rate:g}rps")
    return "/".join(parts) if parts else type(cell).__name__


def _timed_simulate(simulate_fn: Callable, cell) -> tuple[Any, float]:
    """Worker adapter: run one cell and report its wall time.

    Module-level so process pools can pickle it; the measured span is
    the worker-side simulate time, excluding pool dispatch overhead.
    """
    start = time.perf_counter()
    result = simulate_fn(cell)
    return result, time.perf_counter() - start


def run_cached(cells: Sequence, key_fn: Callable[[Any], str],
               simulate_fn: Callable, jobs: int = 1,
               cache_dir: str | Path | None = None,
               stats: CacheStats | None = None) -> list:
    """``[simulate_fn(cell) for cell in cells]``, cached and parallel.

    The one cache-then-fan-out driver every study shares: resolves the
    disk cache first (by ``key_fn(cell)``), simulates only the misses —
    over worker processes when ``jobs > 1`` — then back-fills the
    cache.  ``simulate_fn`` and the cells must be picklable
    module-level objects; results come back in input order.  ``stats``,
    when given, accumulates the run's hit/miss/eviction counters.
    """
    cache = ResultCache(cache_dir) if cache_dir else None
    results: list = [None] * len(cells)
    pending: list[int] = []
    for index, cell in enumerate(cells):
        lookup_start = time.perf_counter()
        hit = cache.get(key_fn(cell)) if cache is not None else None
        if hit is not None:
            results[index] = hit
            if stats is not None:
                stats.record_cell(
                    cell_label(cell),
                    time.perf_counter() - lookup_start, hit=True,
                )
        else:
            pending.append(index)
    fresh = parallel_map(
        _timed_simulate, [(simulate_fn, cells[i]) for i in pending], jobs
    )
    for index, (result, seconds) in zip(pending, fresh):
        results[index] = result
        if stats is not None:
            stats.record_cell(cell_label(cells[index]), seconds, hit=False)
        if cache is not None:
            cache.put(key_fn(cells[index]), result)
    if stats is not None:
        if cache is not None:
            stats.merge(cache, simulated=len(pending))
        else:
            stats.simulated += len(pending)
    return results


def _simulate_cell_tuple(cell: Cell) -> InferenceResult:
    """Adapter: one-argument worker for :func:`run_cached`."""
    return _simulate_cell(*cell)


def simulate_cells(cells: Sequence[Cell], jobs: int = 1,
                   cache_dir: str | Path | None = None
                   ) -> list[InferenceResult]:
    """Run arbitrary simulation cells with optional cache and fan-out.

    The shared building block for the DSE sweeps, on top of
    :func:`run_cached` with the plain matrix-cell key.
    """
    return run_cached(
        list(cells), lambda cell: cell_key(*cell), _simulate_cell_tuple,
        jobs=jobs, cache_dir=cache_dir,
    )


# ---------------------------------------------------------------------------
# The runner.
# ---------------------------------------------------------------------------


@dataclass
class ExperimentRunner:
    """Runs and caches inferences across the evaluation matrix.

    ``jobs`` sets the default process fan-out of :meth:`run_matrix`;
    ``cache_dir`` enables the persistent on-disk result cache.  The
    counters ``simulations_executed`` / ``disk_cache_hits`` expose how
    much work a call actually did (tests assert a warm cache re-run
    simulates nothing).
    """

    config: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    controller: str = "resipi"
    jobs: int = 1
    cache_dir: str | Path | None = None
    _workloads: dict[str, InferenceWorkload] = field(default_factory=dict)
    _results: dict[tuple[str, str], InferenceResult] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self._cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self.simulations_executed = 0
        self.disk_cache_hits = 0

    def workload(self, model_name: str) -> InferenceWorkload:
        """Extract (and cache) the inference workload of a zoo model."""
        if model_name not in self._workloads:
            self._workloads[model_name] = extract_workload(
                MODELS.get(model_name)()
            )
        return self._workloads[model_name]

    def _platform(self, platform_name: str):
        return build_platform(platform_name, self.config, self.controller)

    def _key(self, platform_name: str, model_name: str) -> str:
        return cell_key(platform_name, model_name, self.controller,
                        self.config)

    def run(self, platform_name: str, model_name: str) -> InferenceResult:
        """Run one (platform, model) cell, cached (memory, then disk)."""
        key = (platform_name, model_name)
        if key in self._results:
            return self._results[key]
        result = None
        if self._cache is not None:
            result = self._cache.get(self._key(platform_name, model_name))
            if result is not None:
                self.disk_cache_hits += 1
        if result is None:
            platform = self._platform(platform_name)
            result = platform.run_workload(self.workload(model_name))
            self.simulations_executed += 1
            if self._cache is not None:
                self._cache.put(
                    self._key(platform_name, model_name), result
                )
        self._results[key] = result
        return result

    def run_matrix(
        self,
        platforms: tuple[str, ...] = PLATFORM_ORDER,
        models: tuple[str, ...] = MODEL_NAMES,
        jobs: int | None = None,
    ) -> dict[tuple[str, str], InferenceResult]:
        """Run the full evaluation matrix; returns all cells.

        ``jobs`` overrides the runner default for this call.  Cold cells
        fan out over worker processes; every platform still validates
        eagerly (a bad name fails fast, as in serial mode).
        """
        jobs = self.jobs if jobs is None else jobs
        for platform_name in platforms:
            if platform_name not in PLATFORM_ORDER:
                raise UnknownNameError(
                    "matrix platform", platform_name, PLATFORM_ORDER
                )
        pending: list[tuple[str, str]] = []
        for platform_name in platforms:
            for model_name in models:
                key = (platform_name, model_name)
                if key in self._results:
                    continue
                hit = (
                    self._cache.get(self._key(platform_name, model_name))
                    if self._cache is not None else None
                )
                if hit is not None:
                    self._results[key] = hit
                    self.disk_cache_hits += 1
                else:
                    pending.append(key)
        fresh = _simulate_many(
            [(p, m, self.controller, self.config) for p, m in pending],
            jobs,
        )
        for key, result in zip(pending, fresh):
            self._results[key] = result
            self.simulations_executed += 1
            if self._cache is not None:
                self._cache.put(self._key(*key), result)
        return {
            (platform_name, model_name): self._results[
                (platform_name, model_name)
            ]
            for platform_name in platforms
            for model_name in models
        }

    def average(self, platform_name: str, metric: str,
                models: tuple[str, ...] = MODEL_NAMES) -> float:
        """Average a result attribute across models for one platform."""
        values = [
            getattr(self.run(platform_name, model_name), metric)
            for model_name in models
        ]
        return sum(values) / len(values)
