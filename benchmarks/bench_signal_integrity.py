"""E12 (extension) — signal-integrity validation of the 64-lambda comb.

Reproduces the physical reasoning behind Table 1's wavelength count:
with second-order (flat-top) gateway filters and small-radius rings, the
worst-case interposer path supports exactly 64 wavelengths at BER 1e-12;
plain first-order rings support almost none — the crosstalk problem the
paper's group addresses in [41].
"""

from repro.config import DEFAULT_PLATFORM
from repro.interposer.photonic.links import swmr_read_budget
from repro.interposer.topology import build_floorplan
from repro.photonics.signal_integrity import (
    interposer_filter_ring,
    interposer_grid,
    link_signal_report,
    max_wavelengths_for_ber,
)


def regenerate():
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    budget = swmr_read_budget(DEFAULT_PLATFORM, floorplan)
    rows = []
    for order in (1, 2):
        for n_channels in (8, 16, 32, 64):
            report = link_signal_report(
                budget, interposer_grid(n_channels),
                n_rings_passed=8, filter_order=order,
            )
            rows.append((order, n_channels, report))
    return budget, rows


def test_bench_signal_integrity(benchmark):
    budget, rows = benchmark(regenerate)

    print(f"\n{'filter order':<14}{'wavelengths':>12}{'Q':>8}{'BER':>12}")
    print("-" * 46)
    for order, n_channels, report in rows:
        print(f"{order:<14}{n_channels:>12}{report.q_factor:>8.2f}"
              f"{report.ber:>12.2e}")

    ring = interposer_filter_ring()
    max_order1 = max_wavelengths_for_ber(budget, ring, filter_order=1)
    max_order2 = max_wavelengths_for_ber(budget, ring, filter_order=2)
    print(f"\nmax wavelengths @ BER 1e-12: order-1 filters {max_order1}, "
          f"order-2 filters {max_order2} (Table 1 uses 64)")

    assert max_order2 == DEFAULT_PLATFORM.n_wavelengths
    assert max_order1 < DEFAULT_PLATFORM.n_wavelengths
    for order, n_channels, report in rows:
        if order == 2:
            assert report.meets_1e12
