"""E6 — Table 3: average power, latency and EPB across ten platforms."""

from repro.experiments.table3 import PAPER_TABLE3, build_table3, render_table3


def test_bench_table3(benchmark, warm_runner):
    table = benchmark(build_table3, warm_runner)
    print("\n" + render_table3(table))

    assert len(table.rows) == 10

    # Literature rows are calibrated to the paper's operating points.
    for name in ("Nvidia P100 GPU", "Intel 9282 CPU", "AMD 3970 CPU",
                 "Edge TPU", "Null Hop", "Deap_CNN", "HolyLight"):
        row = table.row(name)
        paper_power, paper_latency, _ = PAPER_TABLE3[name]
        assert row.power_w == paper_power
        assert abs(row.latency_ms - paper_latency) / paper_latency < 0.05

    # Simulated rows reproduce the paper's ordering.
    siph = table.row("2.5D-CrossLight-SiPh")
    elec = table.row("2.5D-CrossLight-Elec")
    mono = table.row("CrossLight")
    assert siph.latency_ms < mono.latency_ms < elec.latency_ms
    assert elec.power_w < mono.power_w < siph.power_w
    assert siph.epb_nj_per_bit == min(r.epb_nj_per_bit for r in table.rows)
    assert siph.latency_ms == min(r.latency_ms for r in table.rows)
