"""E21 (extension) — roofline analysis of the platform crossovers.

Explains the Fig. 7 shape from first principles: operational intensity
(MACs per interposer bit) of each model against each platform's
(peak compute, bandwidth) roofline.
"""

from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.experiments.roofline import (
    platform_rooflines,
    render_roofline,
    roofline_analysis,
)


def regenerate():
    workloads = {
        name: extract_workload(zoo.build(name))
        for name in zoo.MODEL_BUILDERS
    }
    return roofline_analysis(workloads)


def test_bench_roofline(benchmark):
    points = benchmark(regenerate)
    print("\n" + render_roofline(points))

    by_key = {(p.model, p.platform): p for p in points}
    # The electrical interposer is memory-bound on every Table 2 model.
    for model in zoo.MODEL_BUILDERS:
        assert not by_key[(model, "2.5D-CrossLight-Elec")].compute_bound
    # The photonic interposer turns the big CNNs compute-bound.
    for model in ("ResNet50", "DenseNet121", "VGG16", "MobileNetV2"):
        assert by_key[(model, "2.5D-CrossLight-SiPh")].compute_bound
    # Ridge ordering mirrors the bandwidth ordering.
    rooflines = platform_rooflines()
    assert (
        rooflines["2.5D-CrossLight-SiPh"].ridge_intensity_macs_per_bit
        < rooflines["2.5D-CrossLight-Elec"].ridge_intensity_macs_per_bit
    )
