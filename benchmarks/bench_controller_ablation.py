"""E10 — interposer reconfiguration policy ablation.

ReSiPI (gateway scaling) vs PROWAVES (wavelength scaling) vs a static
always-on network, the comparison Section IV motivates.
"""

from repro.experiments.dse import controller_ablation


def regenerate():
    return controller_ablation(model_names=("LeNet5", "ResNet50"))


def test_bench_controller_ablation(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print(f"\n{'policy':<12}{'model':<12}{'latency(ms)':>14}"
          f"{'power(W)':>10}{'reconfigs':>10}")
    print("-" * 58)
    for (policy, model), result in sorted(results.items()):
        print(
            f"{policy:<12}{model:<12}{result.latency_s * 1e3:>14.4f}"
            f"{result.average_power_w:>10.2f}{result.reconfigurations:>10d}"
        )

    for model in ("LeNet5", "ResNet50"):
        resipi = results[("resipi", model)]
        static = results[("static", model)]
        # Reconfiguration saves power relative to the always-on network.
        assert resipi.average_power_w < static.average_power_w
        # At a modest latency cost (activation lag), bounded.
        assert resipi.latency_s < 3.0 * static.latency_s
    # ReSiPI actually reconfigures; static never does.
    assert results[("resipi", "ResNet50")].reconfigurations > 0
    assert results[("static", "ResNet50")].reconfigurations == 0
