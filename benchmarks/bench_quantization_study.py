"""E15 (extension) — precision ladder on the photonic platform.

From the paper's accelerator lineage: heterogeneous quantisation [22]
and binarised networks [24]/[25] cut electro-optic interface cost.  At
the platform level, lower precision shrinks interposer traffic and
energy per inference.
"""

import pytest

from repro.experiments.quantization_study import (
    quantization_study,
    render_quantization_study,
)


def regenerate():
    return quantization_study("ResNet50")


def test_bench_quantization_study(benchmark):
    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + render_quantization_study(points))

    by_scheme = {point.scheme: point for point in points}
    uniform8 = by_scheme["uniform-8b"]
    uniform4 = by_scheme["uniform-4b"]
    binary = by_scheme["binary (LightBulb-style)"]
    hetero = by_scheme["heterogeneous-8/4b"]

    # Traffic scales with precision.
    assert uniform4.traffic_bits < uniform8.traffic_bits
    assert binary.traffic_bits < uniform4.traffic_bits
    assert (
        uniform8.traffic_bits / uniform4.traffic_bits
    ) == pytest.approx(2.0, rel=0.01)
    # Heterogeneous sits between uniform-8 and uniform-4.
    assert uniform4.traffic_bits < hetero.traffic_bits < uniform8.traffic_bits
    # Energy per inference follows traffic down.
    assert binary.result.total_energy_j < uniform8.result.total_energy_j
