"""E5 — Fig. 7c: normalized energy-per-bit per model."""

from repro.experiments.fig7 import fig7_series, render_fig7


def test_bench_fig7_epb(benchmark, warm_runner):
    series = benchmark(fig7_series, warm_runner, "epb")
    print("\n" + render_fig7(series))

    for model in ("ResNet50", "DenseNet121", "VGG16"):
        assert series.bar(model, "2.5D-CrossLight-SiPh") < 0.7
        assert series.bar(model, "2.5D-CrossLight-Elec") > 1.0
    # The paper's LeNet5 observation: overheads hurt EPB on tiny models.
    assert series.bar("LeNet5", "2.5D-CrossLight-SiPh") >= 0.8
