"""E14 (extension) — batched inference throughput.

Layer-major batching keeps each layer's weights resident while the whole
batch streams, amortising weight traffic; per-image latency improves
with batch size and saturates at the compute roofline.
"""

from repro.core.accelerator import CrossLight25DSiPh
from repro.dnn import zoo
from repro.dnn.workload import extract_workload

BATCHES = (1, 2, 4, 8, 16)


def regenerate():
    workload = extract_workload(zoo.build("ResNet50"))
    platform = CrossLight25DSiPh()
    return [
        platform.run_workload(workload, batch_size=batch)
        for batch in BATCHES
    ]


def test_bench_batch_throughput(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print(f"\n{'batch':>6}{'total(ms)':>12}{'per-image(ms)':>15}"
          f"{'inf/s':>10}{'power(W)':>10}")
    print("-" * 53)
    for result in results:
        print(f"{result.batch_size:>6}{result.latency_s * 1e3:>12.4f}"
              f"{result.latency_per_inference_s * 1e3:>15.4f}"
              f"{result.throughput_inferences_per_s:>10.0f}"
              f"{result.average_power_w:>10.2f}")

    per_image = [r.latency_per_inference_s for r in results]
    # Weight amortisation: per-image latency never degrades with batch.
    assert per_image[-1] <= per_image[0] * 1.001
    throughput = [r.throughput_inferences_per_s for r in results]
    assert throughput[-1] >= throughput[0]
