"""E2 — Table 2: the DNN model census.

Benchmarks building all five zoo models (shape inference + parameter
accounting over every layer) and asserts the exact Table 2 counts.
"""

from repro.dnn import zoo
from repro.experiments.tables import render_table2


def build_all():
    return [zoo.build(name) for name in zoo.MODEL_BUILDERS]


def test_bench_table2(benchmark):
    models = benchmark(build_all)
    print("\n" + render_table2())

    for model in models:
        assert model.total_params == zoo.TABLE2_PARAMS[model.name]
        conv, fc = zoo.TABLE2_LAYERS[model.name]
        assert model.conv_layer_count == conv
        assert model.fc_layer_count == fc
