"""E3 — Fig. 7a: normalized power consumption per model.

Benchmarks the full cold regeneration (15 platform simulations) once and
checks the panel's qualitative shape.
"""

from repro.experiments.fig7 import fig7_series, render_fig7
from repro.experiments.runner import ExperimentRunner


def regenerate():
    runner = ExperimentRunner()
    return fig7_series(runner, "power")


def test_bench_fig7_power(benchmark):
    series = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + render_fig7(series))

    for model in series.normalized:
        elec = series.bar(model, "2.5D-CrossLight-Elec")
        siph = series.bar(model, "2.5D-CrossLight-SiPh")
        # Photonic network power overhead: SiPh is the power-hungriest.
        assert siph > elec
    # ReSiPI keeps the small model comparatively cheap.
    assert (
        series.absolute["LeNet5"]["2.5D-CrossLight-SiPh"]
        < series.absolute["VGG16"]["2.5D-CrossLight-SiPh"]
    )
