"""E16 (extension) — open-loop latency-vs-load curves per fabric.

Standard NoC characterisation: locates each interposer's saturation
point under the DNN-like hotspot pattern, independent of any model.
"""

from repro.experiments.network_characterization import (
    characterize_all,
    render_characterization,
)

LOADS = (0.2e12, 0.5e12, 1e12, 2e12, 4e12)


def regenerate():
    return characterize_all(loads_bps=LOADS)


def test_bench_network_characterization(benchmark):
    curves = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + render_characterization(curves))

    # Saturation ordering: electrical << AWGR << photonic tree fabrics.
    last = {kind: points[-1] for kind, points in curves.items()}
    assert last["electrical"].throughput_tbps < last["awgr"].throughput_tbps
    assert last["awgr"].throughput_tbps < (
        last["photonic-resipi"].throughput_tbps
    )
    # ReSiPI tracks the static fabric's throughput within 15%.
    assert last["photonic-resipi"].throughput_tbps >= (
        0.85 * last["photonic-static"].throughput_tbps
    )
    # Every fabric is unsaturated at the lightest load except electrical.
    first = {kind: points[0] for kind, points in curves.items()}
    assert not first["photonic-static"].report.saturated
    assert first["electrical"].report.saturated
