"""E7 — Section VI headline ratios.

Paper: "6.6x lower latency ... 2.8x lower energy-per-bit" vs monolithic
CrossLight, and "34x lower latency and 15.8x lower EPB" vs the
electrical interposer.  Bands (not exact values) are the reproduction
criterion; see DESIGN.md section 4.
"""

from repro.experiments.calibration import shape_checks
from repro.experiments.table3 import build_table3


def test_bench_headline_ratios(benchmark, warm_runner):
    table = benchmark(build_table3, warm_runner)
    print(
        f"\nlatency vs monolithic : {table.latency_gain_vs_monolithic:6.1f}x"
        f"   (paper 6.6x)"
        f"\nEPB     vs monolithic : {table.epb_gain_vs_monolithic:6.1f}x"
        f"   (paper 2.8x)"
        f"\nlatency vs electrical : {table.latency_gain_vs_electrical:6.1f}x"
        f"   (paper 34x)"
        f"\nEPB     vs electrical : {table.epb_gain_vs_electrical:6.1f}x"
        f"   (paper 15.8x)"
    )
    assert 2.0 <= table.latency_gain_vs_monolithic <= 15.0
    assert 1.5 <= table.epb_gain_vs_monolithic <= 6.0
    assert 15.0 <= table.latency_gain_vs_electrical <= 70.0
    assert 6.0 <= table.epb_gain_vs_electrical <= 35.0


def test_bench_shape_checks(benchmark, warm_runner):
    checks = benchmark(shape_checks, warm_runner)
    print()
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        print(f"[{status}] {check.claim}: {check.detail}")
    assert all(check.passed for check in checks)
