"""E8 — DSE: wavelength-count sweep (Section VII, open challenge 3)."""

from repro.experiments.dse import render_sweep, sweep_wavelengths


def regenerate():
    return sweep_wavelengths(model_name="ResNet50",
                             values=(8, 16, 32, 64, 128))


def test_bench_dse_wavelengths(benchmark):
    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + render_sweep("DSE: wavelengths (ResNet50, SiPh)", points))

    # More wavelengths -> no slower; returns diminish once compute-bound.
    latencies = [p.result.latency_s for p in points]
    assert all(b <= a * 1.001 for a, b in zip(latencies, latencies[1:]))
    gain_low = latencies[0] / latencies[1]    # 8 -> 16 wavelengths
    gain_high = latencies[-2] / latencies[-1]  # 64 -> 128 wavelengths
    assert gain_low > gain_high
