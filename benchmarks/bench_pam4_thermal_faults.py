"""E18/E19/E20 (extensions) — PAM-4 signalling, thermal closure, faults.

* E18: OOK vs PAM-4 on the interposer read channel (Section II, [44]).
* E19: thermal fixed-point closure per chiplet class.
* E20: graceful degradation under gateway failures ([39]/[40] theme).
"""

from repro.config import DEFAULT_PLATFORM
from repro.core.engine import InferenceEngine
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.interposer.photonic.controllers import ReSiPIController
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.photonic.faults import FaultInjector, FaultPlan
from repro.interposer.photonic.links import swmr_read_budget
from repro.interposer.topology import build_floorplan
from repro.mapping.mapper import KernelMatchMapper
from repro.photonics.modulation import pam4_tradeoff
from repro.photonics.thermal import thermal_operating_point
from repro.sim.core import Environment


def test_bench_pam4_tradeoff(benchmark):
    """E18: evaluate PAM-4 on the SWMR read channel."""
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    budget = swmr_read_budget(DEFAULT_PLATFORM, floorplan)

    trade = benchmark(pam4_tradeoff, budget)

    print(f"\n{'scheme':<8}{'rate (Gb/s)':>13}{'laser (mW)':>12}"
          f"{'energy/bit (pJ)':>17}")
    print("-" * 50)
    for point in (trade.ook, trade.pam4):
        print(f"{point.spec.scheme.value:<8}"
              f"{point.data_rate_bps / 1e9:>13.0f}"
              f"{point.laser_power_w * 1e3:>12.2f}"
              f"{point.energy_per_bit_j * 1e12:>17.3f}")
    print(f"\nPAM-4: {trade.bandwidth_gain:.1f}x bandwidth for "
          f"{trade.laser_power_ratio:.1f}x laser power; "
          f"wins energy/bit: {trade.pam4_wins_energy}")

    assert trade.bandwidth_gain == 2.0
    assert 2.8 < trade.laser_power_ratio < 3.2
    # On the low-loss interposer channel the laser share is small, so
    # halving the per-bit electronics cost makes PAM-4 worthwhile.
    assert trade.pam4_wins_energy


def test_bench_thermal_closure(benchmark):
    """E19: thermal trimming overhead per chiplet class."""
    cases = {
        # (kind, base power W, rings): compute chiplets vs memory MRG.
        "3x3 conv chiplet": (6.0, 2 * 44 * 9),
        "dense100 chiplet": (5.0, 2 * 4 * 100),
        "memory MRG stack": (8.0, 40 * 64),
    }

    def run():
        return {
            name: thermal_operating_point(power, rings)
            for name, (power, rings) in cases.items()
        }

    points = benchmark(run)

    print(f"\n{'die':<20}{'base(W)':>9}{'rise(K)':>9}{'drift(nm)':>11}"
          f"{'trim(W)':>9}")
    print("-" * 58)
    for name, point in points.items():
        print(f"{name:<20}{point.base_power_w:>9.2f}"
              f"{point.temperature_rise_k:>9.2f}"
              f"{point.resonance_drift_nm:>11.3f}"
              f"{point.thermal_trimming_power_w:>9.3f}")

    for point in points.values():
        # Closure must converge with trimming below half the base power.
        assert point.thermal_trimming_power_w < 0.5 * max(
            point.base_power_w, 1.0
        )


def test_bench_fault_tolerance(benchmark):
    """E20: latency degradation vs failed memory gateways.

    Run at 16 wavelengths, where the platform is communication-
    sensitive; at the full 64-wavelength comb it is compute-bound and
    masks memory-gateway loss almost entirely (also shown below).
    """
    workload = extract_workload(zoo.build("MobileNetV2"))
    config = DEFAULT_PLATFORM.with_wavelengths(16)
    floorplan = build_floorplan(config)
    mapping = KernelMatchMapper(config, floorplan).map_workload(workload)

    def plan_for(failures: int) -> FaultPlan | None:
        if failures == 0:
            return None
        if failures <= 6:
            return FaultPlan(memory_gateways_failed=failures)
        # Beyond the memory side: also kill 3 of 4 gateways per chiplet.
        return FaultPlan(
            memory_gateways_failed=6,
            chiplet_gateways_failed={
                site.chiplet_id: (3, 3)
                for site in floorplan.compute_sites
            },
        )

    def run():
        latencies = {}
        for failures in (0, 2, 6, 54):
            env = Environment()
            fabric = PhotonicInterposerFabric(env, config, floorplan)
            plan = plan_for(failures)
            if plan is not None:
                FaultInjector(fabric, plan)
            ReSiPIController(env, fabric, config)
            engine = InferenceEngine(env, config, fabric)
            latencies[failures] = engine.run(mapping)
        return latencies

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n{'failed gateways':>17}{'latency (ms)':>15}{'slowdown':>10}")
    print("-" * 42)
    for failures, latency in latencies.items():
        print(f"{failures:>17}{latency * 1e3:>15.4f}"
              f"{latency / latencies[0]:>10.2f}x")

    ordered = [latencies[k] for k in sorted(latencies)]
    # Graceful and monotone; the ReSiPI fabric's redundancy + weight
    # prefetch mask even 54/72 dead gateways to a bounded slowdown —
    # the quantitative form of the [39]/[40] fault-tolerance story.
    assert ordered == sorted(ordered)
    assert ordered[-1] > 1.05 * ordered[0]  # degradation is measurable
    assert ordered[-1] < 2.0 * ordered[0]   # but strongly masked
