"""E9 — DSE: gateways-per-chiplet sweep (Section VII, open challenge 3)."""

from repro.experiments.dse import render_sweep, sweep_gateways


def regenerate():
    return sweep_gateways(model_name="ResNet50", values=(1, 2, 4))


def test_bench_dse_gateways(benchmark):
    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + render_sweep("DSE: gateways per chiplet (ResNet50)", points))

    latencies = [p.result.latency_s for p in points]
    # More gateways per chiplet -> more aggregate bandwidth -> not slower.
    assert latencies[-1] <= latencies[0] * 1.001
    for point in points:
        assert point.result.latency_s > 0
        assert point.result.average_power_w > 0
