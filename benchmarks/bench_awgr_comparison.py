"""E13 (extension) — interposer topology: ReSiPI SWMR/SWSR vs AWGR.

Section IV presents AWGR-based interposers [10] as the other photonic
option.  DNN traffic is a memory-hub pattern, so the AWGR's fixed
per-pair wavelength slice (64 / 9 ports = 7 lambda = 84 Gb/s) starves
reads that the ReSiPI fabric serves with up to the full memory-gateway
bandwidth — the quantitative argument for the paper's tree topology.
"""

from repro.core.accelerator import CrossLight25DAWGR, CrossLight25DSiPh
from repro.dnn import zoo
from repro.dnn.workload import extract_workload

MODELS = ("MobileNetV2", "ResNet50")


def regenerate():
    results = {}
    for model_name in MODELS:
        workload = extract_workload(zoo.build(model_name))
        results[("resipi", model_name)] = CrossLight25DSiPh().run_workload(
            workload
        )
        results[("awgr", model_name)] = CrossLight25DAWGR().run_workload(
            workload
        )
    return results


def test_bench_awgr_comparison(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print(f"\n{'fabric':<10}{'model':<14}{'latency(ms)':>13}{'power(W)':>10}"
          f"{'EPB(nJ/b)':>11}")
    print("-" * 58)
    for (fabric, model), result in sorted(results.items()):
        print(f"{fabric:<10}{model:<14}{result.latency_s * 1e3:>13.4f}"
              f"{result.average_power_w:>10.2f}"
              f"{result.energy_per_bit_j * 1e9:>11.3f}")

    for model in MODELS:
        resipi = results[("resipi", model)]
        awgr = results[("awgr", model)]
        # Hub-pattern DNN traffic favours the reconfigurable tree.
        assert resipi.latency_s < awgr.latency_s
        assert awgr.latency_s / resipi.latency_s > 1.3
