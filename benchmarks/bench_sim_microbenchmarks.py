"""Micro-benchmarks of the simulation substrates.

Not paper artefacts — these track the performance of the DES kernel, the
photonic fabric, and the functional MAC unit so regressions in simulator
speed are visible.
"""

import numpy as np

from repro.config import DEFAULT_PLATFORM
from repro.core.mac_unit import MacUnitSpec, PhotonicMacUnit
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.topology import build_floorplan
from repro.sim.core import Environment
from repro.sim.resources import BandwidthChannel


def test_bench_kernel_event_throughput(benchmark):
    """Schedule and fire 10k timeout events."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1e-9)

        env.process(ticker())
        env.run()
        return env.now

    now = benchmark(run)
    assert now > 0


def test_bench_channel_contention(benchmark):
    """1000 contended transfers through one channel."""

    def run():
        env = Environment()
        channel = BandwidthChannel(env, bandwidth_bps=1e9)

        def sender():
            yield env.process(channel.transfer(1e3))

        for _ in range(1000):
            env.process(sender())
        env.run()
        return channel.transfer_count

    count = benchmark(run)
    assert count == 1000


def test_bench_photonic_fabric_reads(benchmark):
    """100 reads across the full interposer pipeline."""

    floorplan = build_floorplan(DEFAULT_PLATFORM)

    def run():
        env = Environment()
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        for site in floorplan.compute_sites:
            for _ in range(12):
                fabric.read(site.chiplet_id, 1e6)
        env.run()
        return fabric.bits_read

    bits = benchmark(run)
    assert bits > 0


def test_bench_functional_mac_matvec(benchmark):
    """Analog matvec through the device transfer functions."""
    unit = PhotonicMacUnit(MacUnitSpec(vector_length=9))
    rng = np.random.default_rng(11)
    matrix = rng.uniform(-1, 1, (8, 27))
    vector = rng.uniform(-1, 1, 27)

    result = benchmark(unit.matvec, matrix, vector)
    assert result.shape == (8,)
