"""Micro-benchmarks of the simulation substrates.

Not paper artefacts — these track the performance of the DES kernel, the
photonic fabric, and the functional MAC unit so regressions in simulator
speed are visible.  The benchmark bodies are shared with
:mod:`repro.bench` (the ``python -m repro bench`` inline runner and the
``BENCH_sim.json`` baseline) so both measure exactly the same work.
"""

from repro.bench import (
    make_channel_contention,
    make_cluster_dispatch_throughput,
    make_continuous_decode_throughput,
    make_fidelity_des_reference,
    make_fidelity_fluid_path,
    make_functional_mac_matvec,
    make_hazard_timeline_reads,
    make_kernel_event_throughput,
    make_photonic_fabric_reads,
    make_resilience_retry_hedge,
    make_sequence_fluid_path,
    make_serving_request_throughput,
    make_telemetry_null_recorder,
    make_warm_fork_sweep,
)


def test_bench_kernel_event_throughput(benchmark):
    """Schedule and fire 10k timeout events."""
    now = benchmark(make_kernel_event_throughput())
    assert now > 0


def test_bench_channel_contention(benchmark):
    """1000 contended transfers through one channel."""
    count = benchmark(make_channel_contention())
    assert count == 1000


def test_bench_photonic_fabric_reads(benchmark):
    """100 reads across the full interposer pipeline."""
    bits = benchmark(make_photonic_fabric_reads())
    assert bits > 0


def test_bench_functional_mac_matvec(benchmark):
    """Analog matvec through the device transfer functions."""
    result = benchmark(make_functional_mac_matvec())
    assert result.shape == (8,)


def test_bench_serving_request_throughput(benchmark):
    """~100 Poisson requests batched through the serving scheduler."""
    completed = benchmark(make_serving_request_throughput())
    assert completed > 0


def test_bench_telemetry_null_recorder(benchmark):
    """The serving benchmark under a metrics-only telemetry session."""
    completed = benchmark(make_telemetry_null_recorder())
    assert completed > 0


def test_bench_hazard_timeline_reads(benchmark):
    """Fabric reads under a capacity-mutating hazard timeline."""
    bits = benchmark(make_hazard_timeline_reads())
    assert bits > 0


def test_bench_cluster_dispatch_throughput(benchmark):
    """~400 Poisson requests routed across an 8-node fleet."""
    routed = benchmark(make_cluster_dispatch_throughput())
    assert routed > 0


def test_bench_resilience_retry_hedge(benchmark):
    """Timeout/retry/hedge lifecycle over a 2-node fleet."""
    completed = benchmark(make_resilience_retry_hedge())
    assert completed > 0


def test_bench_fidelity_des_reference(benchmark):
    """Full-DES baseline of the hybrid-fidelity reference cell."""
    completed = benchmark(make_fidelity_des_reference())
    assert completed > 0


def test_bench_fidelity_fluid_path(benchmark):
    """Warm-forked fluid evaluation of the same reference cell."""
    completed = benchmark(make_fidelity_fluid_path())
    assert completed > 0


def test_bench_warm_fork_sweep(benchmark):
    """6 hazard variants forked from one cold calibration."""
    completed = benchmark(make_warm_fork_sweep())
    assert completed > 0


def test_bench_continuous_decode_throughput(benchmark):
    """Transformer sequences through the continuous decode batcher."""
    tokens = benchmark(make_continuous_decode_throughput())
    assert tokens > 0


def test_bench_sequence_fluid_path(benchmark):
    """Warm fluid-fidelity evaluation of the decode benchmark cell."""
    tokens = benchmark(make_sequence_fluid_path())
    assert tokens > 0
