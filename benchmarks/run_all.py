#!/usr/bin/env python
"""Aggregate the simulator microbenchmark suite into ``BENCH_sim.json``.

Runs the pytest-benchmark suite when pytest-benchmark is installed
(statistically robust medians), falling back to the inline
:mod:`repro.bench` runner otherwise, and writes a machine-readable
baseline of median ns/op per microbenchmark::

    python benchmarks/run_all.py                 # writes ./BENCH_sim.json
    python benchmarks/run_all.py --output out.json --repeats 9

Commit the refreshed ``BENCH_sim.json`` whenever simulator performance
intentionally changes; ``python -m repro bench --check`` guards against
unintentional regressions relative to the committed file.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402
    BASELINE_FILENAME,
    MICROBENCHMARKS,
    render_suite,
    run_suite,
    write_baseline,
)

BENCH_FILE = Path(__file__).resolve().parent / "bench_sim_microbenchmarks.py"


def _pytest_benchmark_medians() -> dict[str, float] | None:
    """Medians from a pytest-benchmark run, or None if unavailable."""
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        return None
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "report.json"
        result = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(BENCH_FILE),
                "--benchmark-only", f"--benchmark-json={report}", "-q",
            ],
            env={**__import__("os").environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True,
            text=True,
        )
        if result.returncode != 0 or not report.exists():
            print(result.stdout, file=sys.stderr)
            print(result.stderr, file=sys.stderr)
            return None
        payload = json.loads(report.read_text(encoding="utf-8"))
    medians = {}
    for entry in payload.get("benchmarks", []):
        name = entry["name"]
        if name in MICROBENCHMARKS:
            medians[name] = entry["stats"]["median"] * 1e9
    return medians or None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / BASELINE_FILENAME),
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="repeats per benchmark for the inline fallback runner",
    )
    parser.add_argument(
        "--inline", action="store_true",
        help="skip pytest-benchmark and time inline (faster, noisier)",
    )
    args = parser.parse_args(argv)

    medians = None if args.inline else _pytest_benchmark_medians()
    source = "pytest-benchmark"
    if medians is None:
        medians = run_suite(repeats=args.repeats)
        source = "repro.bench"

    write_baseline(medians, args.output, source=source)
    print(render_suite(medians))
    print(f"\nwrote {args.output} ({source}, {len(medians)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
