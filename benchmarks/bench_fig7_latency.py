"""E4 — Fig. 7b: normalized total latency per model."""

from repro.experiments.fig7 import fig7_series, render_fig7


def test_bench_fig7_latency(benchmark, warm_runner):
    series = benchmark(fig7_series, warm_runner, "latency")
    print("\n" + render_fig7(series))

    for model in ("ResNet50", "DenseNet121", "VGG16", "MobileNetV2"):
        # SiPh wins on every model except the very small one.
        assert series.bar(model, "2.5D-CrossLight-SiPh") < 1.0
        # The electrical interposer loses everywhere (34x on average).
        assert series.bar(model, "2.5D-CrossLight-Elec") > 1.0
    # LeNet5: the photonic advantage evaporates on a tiny model.
    assert series.bar("LeNet5", "2.5D-CrossLight-SiPh") > 0.7
