"""Benchmark fixtures.

Benchmarks regenerate every table and figure of the paper.  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated tables alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def warm_runner() -> ExperimentRunner:
    """A runner with the full evaluation matrix pre-simulated.

    Benchmarks that only aggregate (Table 3 assembly, Fig. 7 panels)
    measure the aggregation on this warm cache; benchmarks that measure
    simulation cost build their own cold runners.
    """
    runner = ExperimentRunner()
    runner.run_matrix()
    return runner
