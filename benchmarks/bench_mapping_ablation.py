"""E11 (extension) — mapping policy ablation: spillover vs strict.

Quantifies the cost of pure kernel-matched heterogeneity: with strict
matching, VGG16's 3x3-dominated workload is confined to the three 3x3
chiplets and loses roughly 2x in latency.
"""

from repro.experiments.dse import mapping_ablation


def regenerate():
    return mapping_ablation(model_names=("ResNet50", "VGG16"))


def test_bench_mapping_ablation(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print(f"\n{'mapping':<12}{'model':<12}{'latency(ms)':>14}{'power(W)':>10}")
    print("-" * 48)
    for (policy, model), result in sorted(results.items()):
        print(f"{policy:<12}{model:<12}{result.latency_s * 1e3:>14.4f}"
              f"{result.average_power_w:>10.2f}")

    for model in ("ResNet50", "VGG16"):
        spill = results[("spillover", model)]
        strict = results[("strict", model)]
        assert spill.latency_s <= strict.latency_s
    # VGG16 (all 3x3 convs) suffers most from strict confinement.
    vgg_penalty = (
        results[("strict", "VGG16")].latency_s
        / results[("spillover", "VGG16")].latency_s
    )
    assert vgg_penalty > 1.5
