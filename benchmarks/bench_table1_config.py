"""E1 — Table 1: modeling parameters.

Regenerates the configuration table from the live platform config and
checks every printed value against the paper.
"""

from repro.config import DEFAULT_PLATFORM
from repro.experiments.tables import render_table1


def test_bench_table1(benchmark):
    text = benchmark(render_table1, DEFAULT_PLATFORM)
    print("\n" + text)

    # Paper values, verbatim from Table 1.
    assert "12 Gb/s" in text
    assert DEFAULT_PLATFORM.n_wavelengths == 64
    assert DEFAULT_PLATFORM.n_memory_chiplets == 1
    assert DEFAULT_PLATFORM.n_compute_chiplets == 8
    assert DEFAULT_PLATFORM.electrical_link_width_bits == 128
    census = {
        (g.kind, g.n_chiplets, g.macs_per_chiplet, g.macs_per_gateway)
        for g in DEFAULT_PLATFORM.mac_groups
    }
    assert census == {
        ("dense100", 2, 4, 1),
        ("7x7 conv", 1, 8, 2),
        ("5x5 conv", 2, 16, 4),
        ("3x3 conv", 3, 44, 11),
    }
