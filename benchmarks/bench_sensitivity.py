"""E17 (extension) — sensitivity of the headline ratios.

One-at-a-time perturbation of the documented calibration knobs; the
paper's qualitative conclusions must hold at every grid point.
"""

from repro.experiments.sensitivity import (
    DEFAULT_KNOBS,
    render_sensitivity,
    sensitivity_study,
)


def regenerate():
    return sensitivity_study(knobs=DEFAULT_KNOBS)


def test_bench_sensitivity(benchmark):
    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + render_sensitivity(points))

    assert all(point.conclusions_hold for point in points)
    # The grid covers all four knobs at three values each.
    assert len(points) == sum(len(v) for v in DEFAULT_KNOBS.values())
