"""Package definition for the DATE 2023 chiplet-photonics reproduction.

The core simulator is pure stdlib; numpy is only needed for the
functional (analog) MAC-unit models and the microbenchmark that
exercises them, so it ships as an extra alongside the test/bench
tooling.
"""

from setuptools import find_packages, setup

setup(
    name="repro-chiplet-siph",
    version="0.2.0",
    description=(
        "Reproduction of 'Machine Learning Accelerators in 2.5D Chiplet "
        "Platforms with Silicon Photonics' (DATE 2023): DES-based "
        "simulator, experiment drivers, and paper artefacts"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        "functional": ["numpy"],
        "bench": ["pytest", "pytest-benchmark", "numpy"],
        "test": ["pytest", "hypothesis", "numpy"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
